"""Unit tests for repro.baselines.onlinehd."""

import numpy as np
import pytest

from repro.baselines import BasicHDC, BasicHDCConfig, OnlineHD, OnlineHDConfig


@pytest.fixture(scope="module")
def fitted(tiny_dataset):
    model = OnlineHD(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        OnlineHDConfig(dimension=256, epochs=5, seed=3),
    )
    history = model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
    return model, history


class TestConfig:
    def test_defaults(self):
        config = OnlineHDConfig()
        assert config.dimension == 2048
        assert config.bipolar_encoding is True

    @pytest.mark.parametrize(
        "kwargs",
        [{"dimension": 0}, {"epochs": -1}, {"learning_rate": 0.0}],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            OnlineHDConfig(**kwargs)


class TestOnlineHD:
    def test_name(self):
        assert OnlineHD(4, 2).name == "OnlineHD"

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            OnlineHD(0, 2)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OnlineHD(4, 2, OnlineHDConfig(dimension=16)).predict(np.zeros((1, 4)))

    def test_am_is_float_per_class(self, fitted, tiny_dataset):
        model, _ = fitted
        am = model.associative_memory
        assert am.shape == (tiny_dataset.num_classes, 256)
        assert am.dtype == np.float64

    def test_history_tracks_epochs(self, fitted):
        _, history = fitted
        assert history.initial_accuracy is not None
        assert 1 <= history.epochs <= 5

    def test_better_than_chance(self, fitted, tiny_dataset):
        model, _ = fitted
        assert (
            model.score(tiny_dataset.test_features, tiny_dataset.test_labels)
            > 1.5 / tiny_dataset.num_classes
        )

    def test_predictions_valid_range(self, fitted, tiny_dataset):
        model, _ = fitted
        predictions = model.predict(tiny_dataset.test_features)
        assert predictions.min() >= 0
        assert predictions.max() < tiny_dataset.num_classes

    def test_training_improves_over_initial(self, fitted):
        _, history = fitted
        assert history.final_train_accuracy >= history.initial_accuracy - 0.02

    def test_memory_report_counts_fp_am(self, tiny_dataset):
        model = OnlineHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            OnlineHDConfig(dimension=128),
        )
        report = model.memory_report()
        assert report.encoder_bits == tiny_dataset.num_features * 128
        assert report.am_bits == tiny_dataset.num_classes * 128 * 32

    def test_deterministic(self, tiny_dataset):
        def run():
            model = OnlineHD(
                tiny_dataset.num_features,
                tiny_dataset.num_classes,
                OnlineHDConfig(dimension=64, epochs=2, seed=11),
            )
            model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
            return model.predict(tiny_dataset.test_features)

        assert np.array_equal(run(), run())

    def test_label_out_of_range_rejected(self, tiny_dataset):
        model = OnlineHD(tiny_dataset.num_features, 2, OnlineHDConfig(dimension=32))
        with pytest.raises(ValueError):
            model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)

    def test_validation_history(self, tiny_dataset):
        model = OnlineHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            OnlineHDConfig(dimension=64, epochs=2, seed=1),
        )
        history = model.fit(
            tiny_dataset.train_features,
            tiny_dataset.train_labels,
            validation=(tiny_dataset.test_features, tiny_dataset.test_labels),
        )
        assert len(history.validation_accuracy) == history.epochs

    def test_not_worse_than_basichdc_at_same_dimension(self, tiny_hard_dataset):
        """OnlineHD's weighted updates should at least match naive bundling."""
        online = OnlineHD(
            tiny_hard_dataset.num_features,
            tiny_hard_dataset.num_classes,
            OnlineHDConfig(dimension=256, epochs=10, seed=5),
        )
        basic = BasicHDC(
            tiny_hard_dataset.num_features,
            tiny_hard_dataset.num_classes,
            BasicHDCConfig(dimension=256, refine_epochs=0, seed=5),
        )
        online.fit(tiny_hard_dataset.train_features, tiny_hard_dataset.train_labels)
        basic.fit(tiny_hard_dataset.train_features, tiny_hard_dataset.train_labels)
        assert online.score(
            tiny_hard_dataset.test_features, tiny_hard_dataset.test_labels
        ) >= basic.score(
            tiny_hard_dataset.test_features, tiny_hard_dataset.test_labels
        ) - 0.05

    def test_real_valued_encoding_variant(self, tiny_dataset):
        model = OnlineHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            OnlineHDConfig(dimension=128, epochs=2, bipolar_encoding=False, seed=2),
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        assert (
            model.score(tiny_dataset.test_features, tiny_dataset.test_labels)
            > 1.5 / tiny_dataset.num_classes
        )
