"""Unit tests for repro.baselines.quanthd."""

import numpy as np
import pytest

from repro.baselines import QuantHD, QuantHDConfig


@pytest.fixture(scope="module")
def fitted(tiny_dataset):
    model = QuantHD(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        QuantHDConfig(dimension=256, num_levels=16, epochs=6, seed=2),
    )
    history = model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
    return model, history


class TestConfig:
    def test_defaults(self):
        config = QuantHDConfig()
        assert config.num_levels == 256
        assert config.dimension == 2048

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimension": 0},
            {"num_levels": 1},
            {"epochs": -1},
            {"learning_rate": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            QuantHDConfig(**kwargs)


class TestQuantHD:
    def test_name(self):
        assert QuantHD(4, 2).name == "QuantHD"

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            QuantHD(4, 2, QuantHDConfig(dimension=32, num_levels=4)).predict(
                np.zeros((1, 4))
            )

    def test_binary_am(self, fitted):
        model, _ = fitted
        assert set(np.unique(model.associative_memory)) <= {-1.0, 1.0}

    def test_am_shape(self, fitted, tiny_dataset):
        model, _ = fitted
        assert model.associative_memory.shape == (tiny_dataset.num_classes, 256)

    def test_history_per_epoch(self, fitted):
        _, history = fitted
        assert history.epochs == 6
        assert len(history.updates) == 6

    def test_training_improves_over_initial(self, fitted):
        _, history = fitted
        assert history.best_train_accuracy >= history.initial_accuracy - 0.02

    def test_better_than_chance(self, fitted, tiny_dataset):
        model, _ = fitted
        assert (
            model.score(tiny_dataset.test_features, tiny_dataset.test_labels)
            > 1.5 / tiny_dataset.num_classes
        )

    def test_predictions_valid_range(self, fitted, tiny_dataset):
        model, _ = fitted
        predictions = model.predict(tiny_dataset.test_features)
        assert predictions.min() >= 0
        assert predictions.max() < tiny_dataset.num_classes

    def test_memory_report_uses_id_level_formula(self, tiny_dataset):
        model = QuantHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            QuantHDConfig(dimension=128, num_levels=16),
        )
        report = model.memory_report()
        assert report.encoder_bits == (tiny_dataset.num_features + 16) * 128
        assert report.am_bits == tiny_dataset.num_classes * 128

    def test_deterministic(self, tiny_dataset):
        def run():
            model = QuantHD(
                tiny_dataset.num_features,
                tiny_dataset.num_classes,
                QuantHDConfig(dimension=64, num_levels=8, epochs=2, seed=13),
            )
            model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
            return model.predict(tiny_dataset.test_features)

        assert np.array_equal(run(), run())

    def test_updates_decrease_or_stay_bounded(self, fitted, tiny_dataset):
        _, history = fitted
        # Updates are mispredictions per epoch; they must never exceed the
        # training-set size and should not explode over training.
        assert max(history.updates) <= tiny_dataset.num_train
        assert history.updates[-1] <= history.updates[0] + tiny_dataset.num_train // 4

    def test_validation_tracking(self, tiny_dataset):
        model = QuantHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            QuantHDConfig(dimension=64, num_levels=8, epochs=2, seed=3),
        )
        history = model.fit(
            tiny_dataset.train_features,
            tiny_dataset.train_labels,
            validation=(tiny_dataset.test_features, tiny_dataset.test_labels),
        )
        assert len(history.validation_accuracy) == 2

    def test_zero_epochs_still_usable(self, tiny_dataset):
        model = QuantHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            QuantHDConfig(dimension=64, num_levels=8, epochs=0, seed=3),
        )
        history = model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        assert history.train_accuracy  # falls back to the initial accuracy
        predictions = model.predict(tiny_dataset.test_features)
        assert predictions.shape == (tiny_dataset.num_test,)

    def test_packed_engine_matches_float(self, tiny_dataset):
        model = QuantHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            QuantHDConfig(dimension=100, num_levels=8, epochs=2, seed=10),
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        assert np.array_equal(
            model.predict(tiny_dataset.test_features),
            model.predict(tiny_dataset.test_features, engine="packed"),
        )

    def test_packed_cache_tracks_training_refreshes(self, tiny_dataset):
        model = QuantHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            QuantHDConfig(dimension=64, num_levels=8, epochs=1, seed=10),
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        model.prepare_engine("packed")
        first = model._packed()
        assert model._packed() is first
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        assert model._packed() is not first
