"""Unit tests for repro.baselines.searchd."""

import numpy as np
import pytest

from repro.baselines import SearcHD, SearcHDConfig


@pytest.fixture(scope="module")
def fitted(tiny_dataset):
    model = SearcHD(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        SearcHDConfig(dimension=256, num_models=4, num_levels=16, epochs=2, seed=5),
    )
    history = model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
    return model, history


class TestConfig:
    def test_defaults_match_paper(self):
        config = SearcHDConfig()
        assert config.num_models == 64
        assert config.num_levels == 256

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimension": 0},
            {"num_models": 0},
            {"num_levels": 1},
            {"flip_probability": 0.0},
            {"flip_probability": 1.5},
            {"epochs": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SearcHDConfig(**kwargs)


class TestSearcHD:
    def test_name(self):
        assert SearcHD(4, 2).name == "SearcHD"

    def test_predict_before_fit_raises(self):
        model = SearcHD(4, 2, SearcHDConfig(dimension=32, num_models=2, num_levels=4))
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 4)))

    def test_am_tensor_shape(self, fitted, tiny_dataset):
        model, _ = fitted
        assert model.associative_memory.shape == (tiny_dataset.num_classes, 4, 256)

    def test_am_stays_bipolar_after_training(self, fitted):
        model, _ = fitted
        assert set(np.unique(model.associative_memory)) <= {-1, 1}

    def test_better_than_chance(self, fitted, tiny_dataset):
        model, _ = fitted
        assert (
            model.score(tiny_dataset.test_features, tiny_dataset.test_labels)
            > 1.5 / tiny_dataset.num_classes
        )

    def test_predictions_valid(self, fitted, tiny_dataset):
        model, _ = fitted
        predictions = model.predict(tiny_dataset.test_features)
        assert predictions.min() >= 0
        assert predictions.max() < tiny_dataset.num_classes

    def test_history_records_updates(self, fitted):
        _, history = fitted
        assert history.epochs == 2
        assert all(count >= 0 for count in history.updates)

    def test_training_changes_class_vectors(self, tiny_dataset):
        model = SearcHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            SearcHDConfig(dimension=128, num_models=2, num_levels=8, epochs=1, seed=6),
        )
        # Capture the random initial AM by reproducing the construction seed.
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        fresh = SearcHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            SearcHDConfig(dimension=128, num_models=2, num_levels=8, epochs=1, seed=6),
        )
        # A freshly constructed (unfitted) model has no AM at all.
        assert fresh._am is None
        assert model.associative_memory is not None

    def test_memory_report_includes_quantization_factor(self, tiny_dataset):
        model = SearcHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            SearcHDConfig(dimension=128, num_models=8, num_levels=16),
        )
        report = model.memory_report()
        assert report.am_bits == tiny_dataset.num_classes * 128 * 8
        assert report.encoder_bits == (tiny_dataset.num_features + 16) * 128

    def test_deterministic(self, tiny_dataset):
        def run():
            model = SearcHD(
                tiny_dataset.num_features,
                tiny_dataset.num_classes,
                SearcHDConfig(
                    dimension=64, num_models=2, num_levels=8, epochs=1, seed=17
                ),
            )
            model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
            return model.predict(tiny_dataset.test_features)

        assert np.array_equal(run(), run())

    def test_multi_model_prediction_uses_best_of_all_vectors(self, fitted, tiny_dataset):
        model, _ = fitted
        encoded = model.encoder.encode(tiny_dataset.test_features[:5]).astype(np.float64)
        k, n, d = model.associative_memory.shape
        flat = model.associative_memory.reshape(k * n, d).astype(np.float64)
        best = np.argmax(encoded @ flat.T, axis=1)
        expected = best // n
        assert np.array_equal(model.predict(tiny_dataset.test_features[:5]), expected)
