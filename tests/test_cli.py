"""Unit tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import _int_list, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"
        assert args.dataset == "mnist"
        assert args.scale == pytest.approx(0.02)

    def test_train_arguments(self):
        args = build_parser().parse_args(
            [
                "train",
                "--dataset",
                "fmnist",
                "--model",
                "memhd",
                "--dimension",
                "64",
                "--columns",
                "32",
                "--epochs",
                "3",
            ]
        )
        assert args.model == "memhd"
        assert args.dimension == 64
        assert args.columns == 32

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "notamodel"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--dataset", "cifar"])

    def test_int_list_parsing(self):
        assert _int_list("64,128,256") == [64, 128, 256]
        with pytest.raises(Exception):
            _int_list("64,abc")
        with pytest.raises(Exception):
            _int_list(",")

    def test_map_partition_list(self):
        args = build_parser().parse_args(["map", "--partitions", "2,4"])
        assert args.partitions == [2, 4]

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.command == "predict"
        assert args.engine == "packed"
        assert args.batch_size == 1024
        assert args.workers == 1

    def test_predict_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--engine", "quantum"])


class TestCommands:
    def test_info_command(self, capsys):
        exit_code = main(["info", "--dataset", "isolet", "--scale", "0.1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "isolet" in output
        assert "num_classes" in output

    def test_train_memhd_command(self, capsys):
        exit_code = main(
            [
                "train",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--model",
                "memhd",
                "--dimension",
                "64",
                "--columns",
                "32",
                "--epochs",
                "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "MEMHD" in output
        assert "test_accuracy_%" in output

    def test_train_basichdc_command(self, capsys):
        exit_code = main(
            [
                "train",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--model",
                "basichdc",
                "--dimension",
                "128",
                "--epochs",
                "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "BasicHDC" in output

    def test_train_save_artifacts(self, tmp_path, capsys):
        path = tmp_path / "model.npz"
        exit_code = main(
            [
                "train",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--model",
                "memhd",
                "--dimension",
                "64",
                "--columns",
                "16",
                "--epochs",
                "1",
                "--save",
                str(path),
            ]
        )
        assert exit_code == 0
        assert path.exists()
        with np.load(path) as archive:
            assert archive["binary_am"].shape == (16, 64)
            assert archive["projection"].shape == (784, 64)
            assert archive["column_classes"].shape == (16,)

    def test_predict_command_both_engines(self, capsys):
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--dimension",
                "64",
                "--columns",
                "32",
                "--epochs",
                "1",
                "--engine",
                "both",
                "--batch-size",
                "32",
                "--repeats",
                "1",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "packed" in output
        assert "float" in output
        assert "queries_per_s" in output
        assert "speedup" in output

    def test_predict_command_packed_engine_with_workers(self, capsys):
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--dimension",
                "64",
                "--columns",
                "32",
                "--epochs",
                "1",
                "--engine",
                "packed",
                "--batch-size",
                "16",
                "--workers",
                "2",
                "--repeats",
                "1",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "packed" in output

    def test_predict_command_rejects_unwired_model(self, capsys):
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--model",
                "searchd",
                "--epochs",
                "1",
                "--engine",
                "packed",
            ]
        )
        assert exit_code == 2
        assert "packed engine" in capsys.readouterr().err

    def test_map_command_prints_table2(self, capsys):
        exit_code = main(["map", "--dataset", "mnist", "--rows", "128", "--cols", "128"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "MEMHD" in output
        assert "80.0x fewer cycles" in output

    def test_sweep_command(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--dimensions",
                "32,64",
                "--columns",
                "16,32",
                "--epochs",
                "1",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "D \\ C" in output
