"""Unit tests for the command-line interface (repro.cli)."""

import json

import numpy as np
import pytest

from repro.cli import _int_list, _is_checkpoint_path, build_parser, main
from repro.io.checkpoint import load_checkpoint, read_manifest
from repro.io.registry import ArtifactRegistry


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"
        assert args.dataset == "mnist"
        assert args.scale == pytest.approx(0.02)

    def test_train_arguments(self):
        args = build_parser().parse_args(
            [
                "train",
                "--dataset",
                "fmnist",
                "--model",
                "memhd",
                "--dimension",
                "64",
                "--columns",
                "32",
                "--epochs",
                "3",
            ]
        )
        assert args.model == "memhd"
        assert args.dimension == 64
        assert args.columns == 32

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--model", "notamodel"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["info", "--dataset", "cifar"])

    def test_int_list_parsing(self):
        assert _int_list("64,128,256") == [64, 128, 256]
        with pytest.raises(Exception):
            _int_list("64,abc")
        with pytest.raises(Exception):
            _int_list(",")

    def test_map_partition_list(self):
        args = build_parser().parse_args(["map", "--partitions", "2,4"])
        assert args.partitions == [2, 4]

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.command == "predict"
        assert args.engine == "packed"
        assert args.batch_size == 1024
        assert args.workers == 1

    def test_predict_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--engine", "quantum"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--load", "mnist-memhd"])
        assert args.command == "serve"
        assert args.load == "mnist-memhd"
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.engine == "packed"
        assert args.max_batch == 64
        assert args.max_wait_ms == 2.0
        assert args.queue_depth == 128
        assert not args.no_batching

    def test_serve_multi_model_flags(self):
        args = build_parser().parse_args(
            ["serve", "--models", "a:latest,b:v3", "--max-batch", "32",
             "--max-wait-ms", "1.5", "--queue-depth", "16", "--no-batching"]
        )
        assert args.models == ["a:latest", "b:v3"]
        assert args.max_batch == 32
        assert args.max_wait_ms == 1.5
        assert args.queue_depth == 16
        assert args.no_batching

    def test_serve_requires_load_or_models(self, capsys):
        # Parsing succeeds (either flag satisfies the requirement) but
        # running with neither is a usage error.
        args = build_parser().parse_args(["serve"])
        assert args.load is None and args.models is None
        assert main(["serve"]) == 2
        assert "--load" in capsys.readouterr().err

    def test_loadtest_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.command == "loadtest"
        assert args.mode == "closed"
        assert args.concurrency == 32
        assert args.batch == 1
        assert not args.fail_on_error

    def test_loadtest_unreachable_server_is_an_error(self, capsys):
        # Port 1 is essentially never listening; the command must fail
        # cleanly (exit 2) rather than traceback.
        assert main(
            ["loadtest", "--url", "http://127.0.0.1:1", "--duration", "0.2",
             "--concurrency", "1"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_models_subcommands(self):
        args = build_parser().parse_args(["models", "list"])
        assert args.models_command == "list"
        args = build_parser().parse_args(["models", "show", "demo:v1"])
        assert args.spec == "demo:v1"
        args = build_parser().parse_args(["models", "prune", "--keep", "1"])
        assert args.keep == 1
        with pytest.raises(SystemExit):
            build_parser().parse_args(["models"])

    def test_checkpoint_spec_classification(self, tmp_path, monkeypatch):
        assert _is_checkpoint_path("model.npz")
        assert _is_checkpoint_path("some/dir/ckpt")
        assert _is_checkpoint_path(str(tmp_path / "anything"))
        assert not _is_checkpoint_path("mnist-memhd:v1")
        # Classification is by spelling only: a same-named file in the cwd
        # must not flip a registry name into a path spec.
        monkeypatch.chdir(tmp_path)
        (tmp_path / "mnist-memhd").write_text("decoy")
        assert not _is_checkpoint_path("mnist-memhd")


class TestCommands:
    def test_info_command(self, capsys):
        exit_code = main(["info", "--dataset", "isolet", "--scale", "0.1"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "isolet" in output
        assert "num_classes" in output

    def test_train_memhd_command(self, capsys):
        exit_code = main(
            [
                "train",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--model",
                "memhd",
                "--dimension",
                "64",
                "--columns",
                "32",
                "--epochs",
                "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "MEMHD" in output
        assert "test_accuracy_%" in output

    def test_train_basichdc_command(self, capsys):
        exit_code = main(
            [
                "train",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--model",
                "basichdc",
                "--dimension",
                "128",
                "--epochs",
                "2",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "BasicHDC" in output

    def test_train_save_checkpoint_file(self, tmp_path, capsys):
        path = tmp_path / "model.npz"
        exit_code = main(
            [
                "train",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--model",
                "memhd",
                "--dimension",
                "64",
                "--columns",
                "16",
                "--epochs",
                "1",
                "--save",
                str(path),
            ]
        )
        assert exit_code == 0
        assert "saved checkpoint to" in capsys.readouterr().out
        manifest = read_manifest(path)
        assert manifest.model_class == "MEMHDModel"
        assert manifest.dataset["name"] == "mnist"
        assert 0.0 <= manifest.metrics["test_accuracy"] <= 1.0
        model = load_checkpoint(path)
        assert model.config.dimension == 64
        assert model.associative_memory.binary_memory.shape == (16, 64)

    def test_train_save_into_registry(self, tmp_path, capsys):
        store = tmp_path / "store"
        exit_code = main(
            [
                "train",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--model",
                "basichdc",
                "--dimension",
                "64",
                "--epochs",
                "1",
                "--save",
                "mnist-basic",
                "--store",
                str(store),
            ]
        )
        assert exit_code == 0
        assert "mnist-basic:v1" in capsys.readouterr().out
        registry = ArtifactRegistry(store)
        assert registry.tags("mnist-basic") == ["v1"]
        assert registry.inspect("mnist-basic").model_class == "BasicHDC"

    def test_predict_command_both_engines(self, capsys):
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--dimension",
                "64",
                "--columns",
                "32",
                "--epochs",
                "1",
                "--engine",
                "both",
                "--batch-size",
                "32",
                "--repeats",
                "1",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "packed" in output
        assert "float" in output
        assert "queries_per_s" in output
        assert "speedup" in output

    def test_predict_command_packed_engine_with_workers(self, capsys):
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--dimension",
                "64",
                "--columns",
                "32",
                "--epochs",
                "1",
                "--engine",
                "packed",
                "--batch-size",
                "16",
                "--workers",
                "2",
                "--repeats",
                "1",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "packed" in output

    def test_predict_command_rejects_unwired_model(self, capsys):
        # OnlineHD keeps a floating-point AM, so it is the one model family
        # the packed popcount engine cannot serve.
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--model",
                "onlinehd",
                "--epochs",
                "1",
                "--engine",
                "packed",
            ]
        )
        assert exit_code == 2
        assert "packed engine" in capsys.readouterr().err

    def test_predict_command_packed_serves_searchd(self, capsys):
        # SearcHD gained a packed path; `--engine both` asserts bit-equality.
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--model",
                "searchd",
                "--dimension",
                "64",
                "--epochs",
                "1",
                "--engine",
                "both",
                "--batch-size",
                "64",
                "--repeats",
                "1",
            ]
        )
        assert exit_code == 0
        assert "packed" in capsys.readouterr().out

    def test_predict_without_load_prints_retrain_notice(self, capsys):
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--dimension",
                "64",
                "--columns",
                "32",
                "--epochs",
                "1",
                "--engine",
                "float",
                "--repeats",
                "1",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "retrained from scratch" in captured.err
        assert "--load" in captured.err

    def test_map_command_prints_table2(self, capsys):
        exit_code = main(["map", "--dataset", "mnist", "--rows", "128", "--cols", "128"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "MEMHD" in output
        assert "80.0x fewer cycles" in output

    def test_sweep_run_command(self, tmp_path, capsys):
        results = str(tmp_path / "r.jsonl")
        exit_code = main(
            [
                "sweep",
                "run",
                "--models",
                "memhd",
                "--datasets",
                "mnist",
                "--scale",
                "0.01",
                "--dimensions",
                "32,64",
                "--columns",
                "16",
                "--epochs",
                "1",
                "--results",
                results,
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "2 executed" in captured.out
        assert "test_accuracy_%" in captured.out
        # Re-running the identical spec resumes: nothing left to execute.
        assert main(["sweep", "run", "--models", "memhd", "--datasets", "mnist",
                     "--scale", "0.01", "--dimensions", "32,64", "--columns", "16",
                     "--epochs", "1", "--results", results]) == 0
        assert "0 executed" in capsys.readouterr().out


class TestPersistenceWorkflow:
    """train --save -> predict --load -> models, end to end through main()."""

    TRAIN_ARGS = [
        "train",
        "--dataset",
        "mnist",
        "--scale",
        "0.01",
        "--model",
        "memhd",
        "--dimension",
        "64",
        "--columns",
        "16",
        "--epochs",
        "1",
    ]

    @pytest.fixture()
    def store(self, tmp_path):
        return str(tmp_path / "store")

    @pytest.fixture()
    def saved(self, store, capsys):
        assert main(self.TRAIN_ARGS + ["--save", "ckpt", "--store", store]) == 0
        capsys.readouterr()
        return store

    def test_predict_load_skips_retraining(self, saved, capsys, monkeypatch):
        def poisoned_fit(self, *args, **kwargs):
            raise AssertionError("predict --load must not retrain")

        import repro.core.model

        monkeypatch.setattr(repro.core.model.MEMHDModel, "fit", poisoned_fit)
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--load",
                "ckpt",
                "--store",
                saved,
                "--engine",
                "both",
                "--batch-size",
                "64",
                "--repeats",
                "1",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "retrained from scratch" not in captured.err
        assert "queries_per_s" in captured.out

    def test_predict_load_is_bit_identical_to_in_process_model(self, saved):
        from repro.data.datasets import load_dataset

        registry = ArtifactRegistry(saved)
        model = registry.load("ckpt")
        dataset = load_dataset("mnist", scale=0.01, rng=0)
        for engine in ("float", "packed"):
            direct = model.predict(dataset.test_features, engine=engine)
            reloaded = load_checkpoint(registry.resolve("ckpt")).predict(
                dataset.test_features, engine=engine
            )
            assert np.array_equal(direct, reloaded)

    def test_predict_load_missing_checkpoint_fails(self, store, capsys):
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--load",
                "ghost",
                "--store",
                store,
                "--repeats",
                "1",
            ]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_predict_load_warns_on_dataset_mismatch(self, saved, capsys):
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.02",
                "--load",
                "ckpt",
                "--store",
                saved,
                "--engine",
                "float",
                "--repeats",
                "1",
            ]
        )
        assert exit_code == 0
        assert "different" in capsys.readouterr().err

    def test_models_list_and_show(self, saved, capsys):
        assert main(["models", "list", "--store", saved]) == 0
        output = capsys.readouterr().out
        assert "ckpt:v1" in output
        assert "MEMHD" in output
        assert main(["models", "show", "ckpt", "--store", saved]) == 0
        output = capsys.readouterr().out
        assert '"model_class": "MEMHDModel"' in output

    def test_models_list_empty_store(self, store, capsys):
        assert main(["models", "list", "--store", store]) == 0
        assert "no checkpoints" in capsys.readouterr().out

    def test_models_show_unknown_fails(self, store, capsys):
        assert main(["models", "show", "ghost", "--store", store]) == 2
        assert "error:" in capsys.readouterr().err

    def test_models_prune(self, saved, capsys):
        for _ in range(3):
            assert main(self.TRAIN_ARGS + ["--save", "ckpt", "--store", saved]) == 0
        capsys.readouterr()
        assert main(["models", "prune", "--keep", "1", "--store", saved]) == 0
        output = capsys.readouterr().out
        assert "pruned 3 checkpoint(s); 1 kept" in output
        registry = ArtifactRegistry(saved)
        assert len(registry.tags("ckpt")) == 1

    def test_serve_command_rejects_missing_checkpoint(self, store, capsys):
        exit_code = main(["serve", "--load", "ghost", "--store", store])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_save_and_load_path_without_npz_suffix(self, tmp_path, capsys):
        spec = str(tmp_path / "nested" / "model")
        exit_code = main(self.TRAIN_ARGS + ["--save", spec])
        assert exit_code == 0
        # numpy appends .npz; the CLI must print (and reload by) the real path.
        assert f"saved checkpoint to {spec}.npz" in capsys.readouterr().out
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--load",
                spec,
                "--engine",
                "float",
                "--repeats",
                "1",
            ]
        )
        assert exit_code == 0
        assert "retrained from scratch" not in capsys.readouterr().err

    def test_serve_command_reports_bind_failure(self, saved, capsys):
        import socket

        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            exit_code = main(
                ["serve", "--load", "ckpt", "--store", saved, "--port", str(port)]
            )
        finally:
            blocker.close()
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err


class TestErrorPaths:
    """Exit codes and stderr messages of the failure modes users hit."""

    def test_unknown_model_name_rejected_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["train", "--model", "notamodel"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "notamodel" in err

    def test_predict_load_corrupt_checkpoint_manifest(self, tmp_path, capsys):
        """A checkpoint whose manifest cannot be read fails with exit 2."""
        bad = tmp_path / "corrupt.npz"
        bad.write_bytes(b"PK\x03\x04 this is not a valid checkpoint archive")
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--load",
                str(bad),
                "--repeats",
                "1",
            ]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "retrained from scratch" not in err

    def test_predict_load_tampered_manifest_json(self, tmp_path, capsys):
        """A structurally-valid archive with manifest garbage also exits 2."""
        import numpy as np

        bad = tmp_path / "tampered.npz"
        np.savez(bad, __manifest__=np.frombuffer(b"{not json", dtype=np.uint8))
        exit_code = main(
            [
                "predict",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--load",
                str(bad),
                "--repeats",
                "1",
            ]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_run_empty_grid(self, tmp_path, capsys):
        """A grid where every cell is unrealizable must refuse to run."""
        exit_code = main(
            [
                "sweep",
                "run",
                "--models",
                "onlinehd",
                "--engines",
                "packed",
                "--dimensions",
                "32",
                "--results",
                str(tmp_path / "r.jsonl"),
            ]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "empty grid" in err
        assert not (tmp_path / "r.jsonl").exists()

    def test_models_show_missing_tag(self, tmp_path, capsys):
        """`models show name:tag` on a tag that was never saved exits 2."""
        store = str(tmp_path / "store")
        assert main(
            [
                "train",
                "--dataset",
                "mnist",
                "--scale",
                "0.01",
                "--dimension",
                "64",
                "--columns",
                "16",
                "--epochs",
                "1",
                "--save",
                "demo",
                "--store",
                store,
            ]
        ) == 0
        capsys.readouterr()
        exit_code = main(["models", "show", "demo:v99", "--store", store])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "demo:v99" in err


class TestSweepCLI:
    """The sweep subcommands end to end through main()."""

    RUN_ARGS = [
        "sweep",
        "run",
        "--models",
        "memhd,basichdc",
        "--datasets",
        "mnist",
        "--scale",
        "0.01",
        "--dimensions",
        "32",
        "--columns",
        "16",
        "--engines",
        "float,packed",
        "--epochs",
        "1",
        "--seed",
        "5",
    ]

    def test_smoke_preset_runs(self, tmp_path, capsys):
        results = str(tmp_path / "smoke.jsonl")
        assert main(["sweep", "run", "--smoke", "--results", results]) == 0
        out = capsys.readouterr().out
        assert "8 cell(s): 8 executed" in out

    def test_status_reports_pending_and_completed(self, tmp_path, capsys):
        results = str(tmp_path / "r.jsonl")
        assert main(self.RUN_ARGS + ["--results", results, "--max-jobs", "1"]) == 0
        capsys.readouterr()
        assert main(
            ["sweep", "status"] + self.RUN_ARGS[2:] + ["--results", results]
        ) == 0
        out = capsys.readouterr().out
        assert "4 cell(s), 1 completed, 3 pending" in out

    def test_report_renders_table_and_heatmap(self, tmp_path, capsys):
        results = str(tmp_path / "r.jsonl")
        assert main(self.RUN_ARGS + ["--results", results]) == 0
        capsys.readouterr()
        assert main(["sweep", "report", "--results", results, "--heatmap"]) == 0
        out = capsys.readouterr().out
        assert "test_accuracy_%" in out
        assert "D \\ C" in out

    def test_report_empty_store(self, tmp_path, capsys):
        assert main(["sweep", "report", "--results", str(tmp_path / "x.jsonl")]) == 0
        assert "no results" in capsys.readouterr().out

    def test_diff_clean_and_drifted(self, tmp_path, capsys):
        import json

        left = str(tmp_path / "left.jsonl")
        right = str(tmp_path / "right.jsonl")
        assert main(self.RUN_ARGS + ["--results", left]) == 0
        assert main(self.RUN_ARGS + ["--results", right]) == 0
        capsys.readouterr()
        assert main(["sweep", "diff", left, right]) == 0
        assert "identical" in capsys.readouterr().out

        # Inject a metric change: diff must flag it and exit 1.
        lines = [json.loads(line) for line in open(right)]
        lines[0]["metrics"]["test_accuracy"] += 0.5
        with open(right, "w") as handle:
            handle.write("\n".join(json.dumps(line) for line in lines) + "\n")
        assert main(["sweep", "diff", left, right]) == 1
        assert "test_accuracy" in capsys.readouterr().out

    def test_diff_missing_stores_are_clean_no_records(self, tmp_path, capsys):
        """Missing/empty stores diff cleanly (exit 0) instead of erroring."""
        left = str(tmp_path / "ghost_a.jsonl")
        right = str(tmp_path / "ghost_b.jsonl")
        assert main(["sweep", "diff", left, right]) == 0
        out = capsys.readouterr().out
        assert "has no records" in out
        assert "0 matching" in out
        assert "identical" in out

    def test_diff_populated_vs_missing_store_reports_drift(self, tmp_path, capsys):
        """One-sided records are real drift (exit 1), not an error (exit 2)."""
        present = str(tmp_path / "a.jsonl")
        assert main(["sweep", "run", "--smoke", "--results", present]) == 0
        capsys.readouterr()
        exit_code = main(["sweep", "diff", present, str(tmp_path / "ghost.jsonl")])
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "only-left" in captured.out
        assert "error:" not in captured.err

    def test_status_missing_store_exits_0(self, tmp_path, capsys):
        """sweep status on a store that was never written is a clean report."""
        missing = str(tmp_path / "never.jsonl")
        assert main(["sweep", "status", "--smoke", "--results", missing]) == 0
        out = capsys.readouterr().out
        assert "0 stored cell(s)" in out
        assert "pending" in out

    def test_spec_file_round_trip(self, tmp_path, capsys):
        import json

        from repro.eval.sweep import SweepSpec

        spec = SweepSpec(
            models=("basichdc",), dimensions=(32,), scale=0.01, epochs=1, seed=9
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        results = str(tmp_path / "r.jsonl")
        assert main(
            ["sweep", "run", "--spec", str(spec_path), "--results", results]
        ) == 0
        assert "1 executed" in capsys.readouterr().out

    def test_save_best_lands_in_registry(self, tmp_path, capsys):
        results = str(tmp_path / "r.jsonl")
        store = str(tmp_path / "registry")
        assert main(
            self.RUN_ARGS
            + ["--results", results, "--save-best", "sweep-best", "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert "saved best cell" in out
        assert "sweep-best:v1" in out
        registry = ArtifactRegistry(store)
        manifest = registry.inspect("sweep-best")
        assert manifest.metrics["test_accuracy"] == pytest.approx(
            max(
                json.loads(line)["metrics"]["test_accuracy"]
                for line in open(results)
                if "test_accuracy" in json.loads(line)["metrics"]
            )
        )
