"""Unit tests for repro.core.associative_memory (MultiCentroidAM)."""

import numpy as np
import pytest

from repro.core.associative_memory import MultiCentroidAM


def make_am(columns=8, dimension=16, num_classes=4, seed=0, **kwargs):
    gen = np.random.default_rng(seed)
    fp = gen.normal(size=(columns, dimension))
    column_classes = np.arange(columns) % num_classes
    return MultiCentroidAM(fp, column_classes, num_classes=num_classes, **kwargs)


class TestConstruction:
    def test_shapes_and_labels(self):
        am = make_am()
        assert am.num_columns == 8
        assert am.dimension == 16
        assert am.num_classes == 4
        assert am.shape_label == "16x8"

    def test_binary_memory_created_at_construction(self):
        am = make_am()
        assert am.binary_memory.shape == (8, 16)
        assert set(np.unique(am.binary_memory)) <= {0, 1}

    def test_missing_class_raises(self):
        fp = np.random.default_rng(0).normal(size=(4, 8))
        with pytest.raises(ValueError):
            MultiCentroidAM(fp, np.array([0, 0, 1, 1]), num_classes=3)

    def test_num_classes_smaller_than_labels_raises(self):
        fp = np.random.default_rng(0).normal(size=(4, 8))
        with pytest.raises(ValueError):
            MultiCentroidAM(fp, np.array([0, 1, 2, 3]), num_classes=3)

    def test_negative_label_raises(self):
        fp = np.random.default_rng(0).normal(size=(2, 8))
        with pytest.raises(ValueError):
            MultiCentroidAM(fp, np.array([-1, 0]))

    def test_column_class_length_mismatch_raises(self):
        fp = np.random.default_rng(0).normal(size=(4, 8))
        with pytest.raises(ValueError):
            MultiCentroidAM(fp, np.array([0, 1, 2]))

    def test_1d_memory_raises(self):
        with pytest.raises(ValueError):
            MultiCentroidAM(np.zeros(8), np.array([0]))

    def test_num_classes_inferred(self):
        fp = np.random.default_rng(0).normal(size=(3, 8))
        am = MultiCentroidAM(fp, np.array([0, 1, 2]))
        assert am.num_classes == 3


class TestColumnBookkeeping:
    def test_columns_of_class(self):
        am = make_am(columns=8, num_classes=4)
        assert np.array_equal(am.columns_of_class(0), [0, 4])
        assert np.array_equal(am.columns_of_class(3), [3, 7])

    def test_columns_of_class_out_of_range(self):
        am = make_am()
        with pytest.raises(ValueError):
            am.columns_of_class(99)

    def test_columns_per_class(self):
        am = make_am(columns=8, num_classes=4)
        assert am.columns_per_class() == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_memory_bits(self):
        am = make_am(columns=8, dimension=16)
        assert am.memory_bits() == 8 * 16


class TestScoresAndPrediction:
    def test_scores_shape(self):
        am = make_am()
        queries = np.random.default_rng(1).integers(0, 2, size=(5, 16))
        assert am.scores(queries).shape == (5, 8)

    def test_single_query_scores(self):
        am = make_am()
        query = np.random.default_rng(1).integers(0, 2, size=16)
        assert am.scores(query).shape == (8,)

    def test_scores_equal_binary_dot_product(self):
        am = make_am()
        queries = np.random.default_rng(2).integers(0, 2, size=(4, 16)).astype(float)
        expected = queries @ am.binary_memory.T.astype(float)
        assert np.allclose(am.scores(queries), expected)

    def test_dimension_mismatch_raises(self):
        am = make_am()
        with pytest.raises(ValueError):
            am.scores(np.zeros((2, 17)))

    def test_predict_returns_column_class(self):
        am = make_am()
        queries = np.random.default_rng(3).integers(0, 2, size=(6, 16))
        columns = am.predict_columns(queries)
        assert np.array_equal(am.predict(queries), am.column_classes[columns])

    def test_predict_exact_match_of_stored_vector(self):
        am = make_am(columns=6, dimension=32, num_classes=3, seed=5)
        # A query equal to one stored binary row must win that row (its dot
        # with itself equals its popcount, which upper-bounds any other dot).
        row = 4
        query = am.binary_memory[row].astype(float)
        scores = am.scores(query)
        assert scores[row] == scores.max()

    def test_class_scores_shape_and_consistency(self):
        am = make_am()
        queries = np.random.default_rng(4).integers(0, 2, size=(5, 16))
        class_scores = am.class_scores(queries)
        assert class_scores.shape == (5, 4)
        assert np.array_equal(np.argmax(class_scores, axis=1), am.predict(queries))


class TestUpdatesAndRefresh:
    def test_apply_updates_adds_and_subtracts(self):
        am = make_am(seed=7)
        before = am.fp_memory.copy()
        vector = np.ones(16)
        am.apply_updates(
            add_rows=np.array([0]),
            add_vectors=vector[None, :],
            subtract_rows=np.array([1]),
            subtract_vectors=vector[None, :],
            learning_rate=0.5,
        )
        assert np.allclose(am.fp_memory[0], before[0] + 0.5)
        assert np.allclose(am.fp_memory[1], before[1] - 0.5)
        assert np.allclose(am.fp_memory[2:], before[2:])

    def test_repeated_rows_accumulate(self):
        am = make_am(seed=8)
        before = am.fp_memory[0].copy()
        vector = np.ones(16)
        am.apply_updates(
            add_rows=np.array([0, 0, 0]),
            add_vectors=np.tile(vector, (3, 1)),
            subtract_rows=np.array([], dtype=int),
            subtract_vectors=np.zeros((0, 16)),
            learning_rate=0.1,
        )
        assert np.allclose(am.fp_memory[0], before + 0.3)

    def test_updates_do_not_touch_binary_until_refresh(self):
        am = make_am(seed=9)
        binary_before = am.binary_memory.copy()
        # A non-uniform update (only half the positions) so the row's binary
        # pattern must change once the memory is re-quantized.
        update = np.zeros((1, 16))
        update[0, :8] = 100.0
        am.apply_updates(
            add_rows=np.array([0]),
            add_vectors=update,
            subtract_rows=np.array([], dtype=int),
            subtract_vectors=np.zeros((0, 16)),
            learning_rate=1.0,
        )
        assert np.array_equal(am.binary_memory, binary_before)
        am.refresh_binary()
        assert not np.array_equal(am.binary_memory, binary_before)

    def test_invalid_learning_rate(self):
        am = make_am()
        with pytest.raises(ValueError):
            am.apply_updates(
                np.array([0]), np.zeros((1, 16)), np.array([0]), np.zeros((1, 16)), 0.0
            )

    def test_refresh_uses_configured_normalization(self):
        gen = np.random.default_rng(10)
        fp = gen.normal(size=(6, 32))
        fp[0] += 100.0  # a row that dominates the global-mean threshold
        labels = np.arange(6) % 3
        zscore_am = MultiCentroidAM(fp.copy(), labels, normalization="zscore")
        none_am = MultiCentroidAM(fp.copy(), labels, normalization="none")
        # Without normalization the dominating row binarizes to (almost) all
        # ones under the global-mean threshold; z-scoring keeps it balanced.
        assert none_am.binary_memory[0].mean() > zscore_am.binary_memory[0].mean()
        assert 0.3 < zscore_am.binary_memory[0].mean() < 0.7


class TestCopy:
    def test_copy_is_independent(self):
        am = make_am(seed=11)
        clone = am.copy()
        clone.fp_memory[0, 0] += 123.0
        clone.binary_memory[0, 0] = 1 - clone.binary_memory[0, 0]
        assert am.fp_memory[0, 0] != clone.fp_memory[0, 0]
        assert am.binary_memory[0, 0] != clone.binary_memory[0, 0]

    def test_copy_preserves_configuration(self):
        am = make_am(threshold_mode="row-mean", normalization="l2")
        clone = am.copy()
        assert clone.threshold_mode == "row-mean"
        assert clone.normalization == "l2"
        assert np.array_equal(clone.column_classes, am.column_classes)
