"""Unit tests for repro.core.compression (merging and pruning centroids)."""

import numpy as np
import pytest

from repro.core.associative_memory import MultiCentroidAM
from repro.core.compression import (
    centroid_usage,
    merge_similar_centroids,
    prune_centroids,
)
from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel


@pytest.fixture()
def trained_am_and_queries(tiny_dataset):
    model = MEMHDModel(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        MEMHDConfig(dimension=64, columns=32, epochs=5, seed=1),
        rng=1,
    )
    model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
    queries = model.encode_binary(tiny_dataset.train_features).astype(np.float64)
    test_queries = model.encode_binary(tiny_dataset.test_features).astype(np.float64)
    return (
        model.associative_memory,
        queries,
        tiny_dataset.train_labels,
        test_queries,
        tiny_dataset.test_labels,
    )


def make_am_with_duplicates():
    """A small AM whose class 0 has two identical centroids."""
    gen = np.random.default_rng(0)
    base = gen.normal(size=(6, 32))
    base[1] = base[0] + 1e-9  # near-duplicate of row 0, same class
    column_classes = np.array([0, 0, 1, 1, 2, 2])
    return MultiCentroidAM(base, column_classes, num_classes=3)


class TestMergeSimilarCentroids:
    def test_duplicates_are_merged(self):
        am = make_am_with_duplicates()
        merged, report = merge_similar_centroids(am, max_hamming_fraction=0.0)
        assert merged.num_columns == 5
        assert report.columns_removed == 1
        assert report.merged_pairs == [(0, 1)]
        assert report.removed_per_class == {0: 1}

    def test_original_memory_untouched(self):
        am = make_am_with_duplicates()
        before = am.fp_memory.copy()
        merge_similar_centroids(am, max_hamming_fraction=0.0)
        assert np.array_equal(am.fp_memory, before)
        assert am.num_columns == 6

    def test_absorbed_mass_added_to_kept_row(self):
        am = make_am_with_duplicates()
        merged, _ = merge_similar_centroids(am, max_hamming_fraction=0.0)
        assert np.allclose(merged.fp_memory[0], am.fp_memory[0] + am.fp_memory[1])

    def test_distinct_centroids_not_merged(self, trained_am_and_queries):
        am, *_ = trained_am_and_queries
        merged, report = merge_similar_centroids(am, max_hamming_fraction=0.0)
        # A trained AM generally has no exactly-duplicate binary rows.
        assert merged.num_columns >= am.num_columns - 2
        assert report.columns_after == merged.num_columns

    def test_threshold_one_merges_everything_within_a_class(self):
        am = make_am_with_duplicates()
        merged, _ = merge_similar_centroids(am, max_hamming_fraction=1.0)
        assert merged.num_columns == 3  # one centroid per class survives
        assert set(merged.column_classes) == {0, 1, 2}

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            merge_similar_centroids(make_am_with_duplicates(), max_hamming_fraction=1.5)

    def test_report_as_dict(self):
        _, report = merge_similar_centroids(make_am_with_duplicates(), 0.0)
        data = report.as_dict()
        assert data["columns_removed"] == 1
        assert data["merged_pairs"] == [(0, 1)]


class TestCentroidUsage:
    def test_usage_sums_to_sample_count(self, trained_am_and_queries):
        am, queries, labels, *_ = trained_am_and_queries
        usage = centroid_usage(am, queries, labels)
        assert usage.shape == (am.num_columns,)
        assert usage.sum() == labels.size

    def test_usage_respects_class_partition(self, trained_am_and_queries):
        am, queries, labels, *_ = trained_am_and_queries
        usage = centroid_usage(am, queries, labels)
        for class_label in range(am.num_classes):
            columns = am.columns_of_class(class_label)
            class_count = int(np.sum(labels == class_label))
            assert usage[columns].sum() == class_count

    def test_length_mismatch_raises(self, trained_am_and_queries):
        am, queries, labels, *_ = trained_am_and_queries
        with pytest.raises(ValueError):
            centroid_usage(am, queries, labels[:-1])


class TestPruneCentroids:
    def test_prunes_to_target(self, trained_am_and_queries):
        am, queries, labels, *_ = trained_am_and_queries
        pruned, report = prune_centroids(am, queries, labels, target_columns=16)
        assert pruned.num_columns == 16
        assert report.columns_after == 16
        assert report.columns_removed == am.num_columns - 16

    def test_every_class_keeps_a_centroid(self, trained_am_and_queries):
        am, queries, labels, *_ = trained_am_and_queries
        pruned, _ = prune_centroids(am, queries, labels, target_columns=am.num_classes)
        per_class = pruned.columns_per_class()
        assert all(count >= 1 for count in per_class.values())
        assert pruned.num_columns == am.num_classes

    def test_target_above_current_is_noop_copy(self, trained_am_and_queries):
        am, queries, labels, *_ = trained_am_and_queries
        pruned, report = prune_centroids(am, queries, labels, target_columns=am.num_columns + 5)
        assert pruned.num_columns == am.num_columns
        assert report.columns_removed == 0
        assert pruned is not am

    def test_target_below_class_count_rejected(self, trained_am_and_queries):
        am, queries, labels, *_ = trained_am_and_queries
        with pytest.raises(ValueError):
            prune_centroids(am, queries, labels, target_columns=am.num_classes - 1)

    def test_moderate_pruning_keeps_most_accuracy(self, trained_am_and_queries):
        am, queries, labels, test_queries, test_labels = trained_am_and_queries
        baseline = float(np.mean(am.predict(test_queries) == test_labels))
        pruned, _ = prune_centroids(am, queries, labels, target_columns=24)
        pruned_accuracy = float(np.mean(pruned.predict(test_queries) == test_labels))
        assert pruned_accuracy >= baseline - 0.15

    def test_heavier_pruning_never_beats_lighter_by_much(self, trained_am_and_queries):
        am, queries, labels, test_queries, test_labels = trained_am_and_queries
        light, _ = prune_centroids(am, queries, labels, target_columns=24)
        heavy, _ = prune_centroids(am, queries, labels, target_columns=am.num_classes)
        light_accuracy = float(np.mean(light.predict(test_queries) == test_labels))
        heavy_accuracy = float(np.mean(heavy.predict(test_queries) == test_labels))
        assert heavy_accuracy <= light_accuracy + 0.10

    def test_original_memory_untouched(self, trained_am_and_queries):
        am, queries, labels, *_ = trained_am_and_queries
        columns_before = am.num_columns
        prune_centroids(am, queries, labels, target_columns=16)
        assert am.num_columns == columns_before
