"""Unit tests for repro.core.config."""

import dataclasses

import pytest

from repro.core.config import MEMHDConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = MEMHDConfig()
        assert config.dimension == 128
        assert config.columns == 128
        assert 0.0 < config.cluster_ratio <= 1.0
        assert config.init_method == "clustering"
        assert config.threshold_mode == "global-mean"

    def test_shape_label(self):
        assert MEMHDConfig(dimension=512, columns=256).shape_label == "512x256"

    def test_frozen(self):
        config = MEMHDConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.dimension = 64


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dimension": 0},
            {"columns": 0},
            {"cluster_ratio": 0.0},
            {"cluster_ratio": 1.2},
            {"epochs": -1},
            {"learning_rate": 0.0},
            {"init_method": "bogus"},
            {"normalization": "bogus"},
            {"threshold_mode": "bogus"},
            {"kmeans_iterations": 0},
            {"allocation_rounds": 0},
            {"binary_update_interval": 0},
            {"early_stop_patience": 0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            MEMHDConfig(**kwargs)

    def test_valid_alternatives_accepted(self):
        MEMHDConfig(init_method="random", normalization="l2", threshold_mode="row-mean")
        MEMHDConfig(normalization="none", early_stop_patience=3)

    def test_validate_for_checks_columns_vs_classes(self):
        config = MEMHDConfig(columns=8)
        config.validate_for(8)
        with pytest.raises(ValueError):
            config.validate_for(9)
        with pytest.raises(ValueError):
            config.validate_for(0)


class TestWithUpdates:
    def test_returns_new_instance(self):
        config = MEMHDConfig()
        updated = config.with_updates(dimension=256)
        assert updated.dimension == 256
        assert config.dimension == 128
        assert updated is not config

    def test_updates_are_validated(self):
        with pytest.raises(ValueError):
            MEMHDConfig().with_updates(cluster_ratio=2.0)

    def test_multiple_updates(self):
        updated = MEMHDConfig().with_updates(dimension=64, columns=64, epochs=3)
        assert (updated.dimension, updated.columns, updated.epochs) == (64, 64, 3)
