"""Unit tests for repro.core.initialization."""

import numpy as np
import pytest

from repro.core.initialization import (
    clustering_initialization,
    initial_clusters_per_class,
    random_sampling_initialization,
)


class TestInitialClustersPerClass:
    def test_paper_formula(self):
        # n = max(1, floor(C * R / k))
        assert initial_clusters_per_class(128, 10, 0.8) == 10
        assert initial_clusters_per_class(128, 10, 1.0) == 12
        assert initial_clusters_per_class(64, 26, 0.5) == 1

    def test_at_least_one(self):
        assert initial_clusters_per_class(30, 26, 0.1) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            initial_clusters_per_class(5, 10, 0.8)
        with pytest.raises(ValueError):
            initial_clusters_per_class(64, 10, 0.0)
        with pytest.raises(ValueError):
            initial_clusters_per_class(64, 10, 1.5)


class TestClusteringInitialization:
    def test_full_utilization(self, encoded_training_data):
        encoded, labels = encoded_training_data
        result = clustering_initialization(
            encoded, labels, columns=16, num_classes=4, cluster_ratio=0.75, rng=0
        )
        assert result.fp_memory.shape == (16, encoded.shape[1])
        assert result.column_classes.shape == (16,)
        assert result.num_columns == 16

    def test_every_class_gets_at_least_one_column(self, encoded_training_data):
        encoded, labels = encoded_training_data
        result = clustering_initialization(
            encoded, labels, columns=16, num_classes=4, cluster_ratio=0.5, rng=1
        )
        assert set(np.unique(result.column_classes)) == {0, 1, 2, 3}
        assert sum(result.clusters_per_class.values()) == 16

    def test_ratio_one_allocates_everything_up_front(self, encoded_training_data):
        encoded, labels = encoded_training_data
        result = clustering_initialization(
            encoded, labels, columns=16, num_classes=4, cluster_ratio=1.0, rng=2
        )
        assert result.num_columns == 16
        assert result.method == "clustering"

    def test_allocation_rounds_recorded_for_small_ratio(self, encoded_training_data):
        encoded, labels = encoded_training_data
        result = clustering_initialization(
            encoded,
            labels,
            columns=20,
            num_classes=4,
            cluster_ratio=0.4,
            allocation_rounds=3,
            rng=3,
        )
        assert result.num_columns == 20
        assert len(result.allocation_rounds) >= 1
        for record in result.allocation_rounds:
            assert "misclassified" in record
            assert "granted" in record

    def test_allocation_favours_confused_classes(self, encoded_training_data):
        encoded, labels = encoded_training_data
        result = clustering_initialization(
            encoded,
            labels,
            columns=24,
            num_classes=4,
            cluster_ratio=0.4,
            allocation_rounds=2,
            rng=4,
        )
        # The classes receiving extra columns in a round must be among those
        # with non-zero misclassification counts whenever any exist.
        for record in result.allocation_rounds:
            wrong = np.asarray(record["misclassified"])
            granted = np.asarray(record["granted"])
            if wrong.sum() > 0 and granted.sum() > 0:
                assert wrong[np.argmax(granted)] > 0

    def test_deterministic(self, encoded_training_data):
        encoded, labels = encoded_training_data
        a = clustering_initialization(
            encoded, labels, columns=16, num_classes=4, rng=77
        )
        b = clustering_initialization(
            encoded, labels, columns=16, num_classes=4, rng=77
        )
        assert np.allclose(a.fp_memory, b.fp_memory)
        assert np.array_equal(a.column_classes, b.column_classes)

    def test_padding_for_tiny_datasets(self):
        gen = np.random.default_rng(0)
        encoded = gen.integers(0, 2, size=(8, 12)).astype(float)
        labels = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        result = clustering_initialization(
            encoded, labels, columns=16, num_classes=4, cluster_ratio=1.0, rng=0
        )
        assert result.num_columns == 16
        assert result.padded_columns > 0

    def test_missing_class_raises(self, encoded_training_data):
        encoded, labels = encoded_training_data
        with pytest.raises(ValueError):
            clustering_initialization(
                encoded, labels, columns=16, num_classes=5, rng=0
            )

    def test_columns_fewer_than_classes_raises(self, encoded_training_data):
        encoded, labels = encoded_training_data
        with pytest.raises(ValueError):
            clustering_initialization(encoded, labels, columns=3, num_classes=4)

    def test_length_mismatch_raises(self, encoded_training_data):
        encoded, labels = encoded_training_data
        with pytest.raises(ValueError):
            clustering_initialization(encoded, labels[:-1], columns=8, num_classes=4)

    def test_1d_encoded_raises(self):
        with pytest.raises(ValueError):
            clustering_initialization(np.zeros(5), np.zeros(5), columns=4, num_classes=2)


class TestRandomSamplingInitialization:
    def test_shapes_and_full_utilization(self, encoded_training_data):
        encoded, labels = encoded_training_data
        result = random_sampling_initialization(
            encoded, labels, columns=16, num_classes=4, rng=0
        )
        assert result.fp_memory.shape == (16, encoded.shape[1])
        assert result.method == "random"
        assert sum(result.clusters_per_class.values()) == 16

    def test_columns_split_evenly(self, encoded_training_data):
        encoded, labels = encoded_training_data
        result = random_sampling_initialization(
            encoded, labels, columns=18, num_classes=4, rng=1
        )
        counts = sorted(result.clusters_per_class.values())
        assert counts == [4, 4, 5, 5]

    def test_vectors_are_sampled_from_the_right_class(self, encoded_training_data):
        encoded, labels = encoded_training_data
        result = random_sampling_initialization(
            encoded, labels, columns=8, num_classes=4, rng=2
        )
        for column, class_label in enumerate(result.column_classes):
            stored = result.fp_memory[column]
            class_samples = encoded[labels == class_label]
            matches = np.any(np.all(np.isclose(class_samples, stored), axis=1))
            assert matches

    def test_deterministic(self, encoded_training_data):
        encoded, labels = encoded_training_data
        a = random_sampling_initialization(encoded, labels, 12, 4, rng=5)
        b = random_sampling_initialization(encoded, labels, 12, 4, rng=5)
        assert np.allclose(a.fp_memory, b.fp_memory)

    def test_sampling_with_replacement_for_small_classes(self):
        gen = np.random.default_rng(0)
        encoded = gen.integers(0, 2, size=(6, 10)).astype(float)
        labels = np.array([0, 0, 0, 1, 1, 1])
        result = random_sampling_initialization(encoded, labels, 10, 2, rng=3)
        assert result.num_columns == 10

    def test_columns_fewer_than_classes_raises(self, encoded_training_data):
        encoded, labels = encoded_training_data
        with pytest.raises(ValueError):
            random_sampling_initialization(encoded, labels, 2, 4)

    def test_empty_class_raises(self):
        encoded = np.random.default_rng(0).integers(0, 2, size=(4, 8)).astype(float)
        labels = np.array([0, 0, 1, 1])
        with pytest.raises(ValueError):
            random_sampling_initialization(encoded, labels, columns=6, num_classes=3)
