"""Unit tests for repro.core.model (MEMHDModel)."""

import numpy as np
import pytest

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel


class TestConstruction:
    def test_name(self):
        assert MEMHDModel(8, 4, MEMHDConfig(columns=8)).name == "MEMHD"

    def test_invalid_feature_or_class_counts(self):
        with pytest.raises(ValueError):
            MEMHDModel(0, 4)
        with pytest.raises(ValueError):
            MEMHDModel(8, 0)

    def test_columns_fewer_than_classes_rejected(self):
        with pytest.raises(ValueError):
            MEMHDModel(8, 10, MEMHDConfig(columns=8))

    def test_shape_label(self):
        model = MEMHDModel(8, 4, MEMHDConfig(dimension=64, columns=32))
        assert model.shape_label == "64x32"

    def test_encoder_dimension_matches_config(self):
        model = MEMHDModel(8, 4, MEMHDConfig(dimension=96, columns=16))
        assert model.encoder.dimension == 96
        assert model.encoder.num_features == 8


class TestUnfittedBehaviour:
    def test_predict_before_fit_raises(self):
        model = MEMHDModel(8, 4, MEMHDConfig(columns=8))
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 8)))

    def test_am_property_before_fit_raises(self):
        model = MEMHDModel(8, 4, MEMHDConfig(columns=8))
        with pytest.raises(RuntimeError):
            _ = model.associative_memory

    def test_initialization_property_before_fit_raises(self):
        model = MEMHDModel(8, 4, MEMHDConfig(columns=8))
        with pytest.raises(RuntimeError):
            _ = model.initialization

    def test_encode_binary_works_before_fit(self):
        model = MEMHDModel(8, 4, MEMHDConfig(dimension=32, columns=8, seed=1))
        encoded = model.encode_binary(np.random.default_rng(0).random((3, 8)))
        assert encoded.shape == (3, 32)
        assert set(np.unique(encoded)) <= {0, 1}


class TestFittedModel:
    def test_history_fields(self, trained_memhd):
        _, history = trained_memhd
        assert history.initial_accuracy is not None
        assert history.epochs >= 1
        assert len(history.updates) == history.epochs

    def test_predictions_shape_and_range(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        predictions = model.predict(tiny_dataset.test_features)
        assert predictions.shape == (tiny_dataset.num_test,)
        assert predictions.min() >= 0
        assert predictions.max() < tiny_dataset.num_classes

    def test_accuracy_beats_chance_comfortably(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        accuracy = model.score(tiny_dataset.test_features, tiny_dataset.test_labels)
        assert accuracy > 2.0 / tiny_dataset.num_classes

    def test_am_shape_matches_config(self, trained_memhd, memhd_config):
        model, _ = trained_memhd
        am = model.associative_memory
        assert am.num_columns == memhd_config.columns
        assert am.dimension == memhd_config.dimension

    def test_am_is_fully_utilized(self, trained_memhd, memhd_config, tiny_dataset):
        model, _ = trained_memhd
        per_class = model.associative_memory.columns_per_class()
        assert sum(per_class.values()) == memhd_config.columns
        assert all(count >= 1 for count in per_class.values())
        assert len(per_class) == tiny_dataset.num_classes

    def test_initialization_details_exposed(self, trained_memhd):
        model, _ = trained_memhd
        init = model.initialization
        assert init.method == "clustering"
        assert init.num_columns == model.config.columns

    def test_class_scores_shape(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        scores = model.class_scores(tiny_dataset.test_features[:7])
        assert scores.shape == (7, tiny_dataset.num_classes)
        assert np.array_equal(
            np.argmax(scores, axis=1), model.predict(tiny_dataset.test_features[:7])
        )

    def test_memory_report_matches_table1(self, trained_memhd, tiny_dataset, memhd_config):
        model, _ = trained_memhd
        report = model.memory_report()
        assert report.encoder_bits == tiny_dataset.num_features * memhd_config.dimension
        assert report.am_bits == memhd_config.columns * memhd_config.dimension

    def test_single_sample_prediction(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        single = model.predict(tiny_dataset.test_features[0])
        assert single.shape == (1,)

    def test_projection_matrix_binary(self, trained_memhd, tiny_dataset, memhd_config):
        model, _ = trained_memhd
        projection = model.projection_matrix_binary()
        assert projection.shape == (tiny_dataset.num_features, memhd_config.dimension)
        assert set(np.unique(projection)) <= {0, 1}


class TestTrainingVariants:
    def test_deterministic_given_seed(self, tiny_dataset):
        def run():
            model = MEMHDModel(
                tiny_dataset.num_features,
                tiny_dataset.num_classes,
                MEMHDConfig(dimension=48, columns=16, epochs=4, seed=31),
                rng=31,
            )
            model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
            return model.predict(tiny_dataset.test_features)

        assert np.array_equal(run(), run())

    def test_random_initialization_variant(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(
                dimension=48, columns=16, epochs=4, init_method="random", seed=5
            ),
            rng=5,
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        assert model.initialization.method == "random"
        assert model.score(tiny_dataset.test_features, tiny_dataset.test_labels) > 0.25

    def test_validation_history(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=48, columns=16, epochs=3, seed=6),
            rng=6,
        )
        history = model.fit(
            tiny_dataset.train_features,
            tiny_dataset.train_labels,
            validation=(tiny_dataset.test_features, tiny_dataset.test_labels),
        )
        assert len(history.validation_accuracy) == history.epochs

    def test_zero_epochs_usable_after_initialization_only(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=48, columns=16, epochs=0, seed=7),
            rng=7,
        )
        history = model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        assert history.train_accuracy == [history.initial_accuracy]
        assert model.predict(tiny_dataset.test_features).shape == (
            tiny_dataset.num_test,
        )

    def test_label_out_of_range_rejected(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            2,
            MEMHDConfig(dimension=32, columns=4, epochs=1),
        )
        with pytest.raises(ValueError):
            model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)

    def test_row_mean_threshold_variant(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(
                dimension=48,
                columns=16,
                epochs=3,
                threshold_mode="row-mean",
                normalization="l2",
                seed=8,
            ),
            rng=8,
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        assert model.score(tiny_dataset.test_features, tiny_dataset.test_labels) > 0.25

    def test_clustering_beats_random_initially_on_hard_data(self, tiny_hard_dataset):
        """The Fig. 5 effect at unit-test scale: better initial accuracy."""
        common = dict(dimension=96, columns=36, epochs=0)
        clustering_inits = []
        random_inits = []
        for seed in (11, 12, 13):
            for method, bucket in (
                ("clustering", clustering_inits),
                ("random", random_inits),
            ):
                model = MEMHDModel(
                    tiny_hard_dataset.num_features,
                    tiny_hard_dataset.num_classes,
                    MEMHDConfig(init_method=method, seed=seed, **common),
                    rng=seed,
                )
                history = model.fit(
                    tiny_hard_dataset.train_features, tiny_hard_dataset.train_labels
                )
                bucket.append(history.initial_accuracy)
        assert np.mean(clustering_inits) > np.mean(random_inits)
