"""Unit tests for repro.core.online (OnlineMEMHD)."""

import numpy as np
import pytest

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.core.online import OnlineMEMHD
from repro.data.synthetic import SyntheticSpec, make_synthetic_dataset


@pytest.fixture()
def fitted_model(tiny_dataset):
    model = MEMHDModel(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        MEMHDConfig(dimension=64, columns=24, epochs=5, seed=0),
        rng=0,
    )
    model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
    return model


@pytest.fixture()
def five_class_dataset():
    """A dataset with one extra class, sharing the tiny dataset's geometry."""
    spec = SyntheticSpec(
        num_classes=5,
        num_features=24,
        train_per_class=60,
        test_per_class=20,
        modes_per_class=3,
        latent_dim=8,
        class_separation=3.0,
        noise_scale=0.3,
    )
    return make_synthetic_dataset("tiny5", spec, rng=7)


class TestConstruction:
    def test_requires_fitted_model(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=32, columns=8),
        )
        with pytest.raises(RuntimeError):
            OnlineMEMHD(model)

    def test_default_learning_rate_from_config(self, fitted_model):
        online = OnlineMEMHD(fitted_model)
        assert online.learning_rate == fitted_model.config.learning_rate

    def test_invalid_learning_rate(self, fitted_model):
        with pytest.raises(ValueError):
            OnlineMEMHD(fitted_model, learning_rate=0.0)


class TestPartialFit:
    def test_returns_batch_statistics(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model)
        stats = online.partial_fit(
            tiny_dataset.train_features[:50], tiny_dataset.train_labels[:50]
        )
        assert set(stats) == {"batch_accuracy_before", "batch_accuracy_after", "updates"}
        assert 0 <= stats["updates"] <= 50

    def test_unknown_label_rejected(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model)
        labels = tiny_dataset.train_labels[:10].copy()
        labels[0] = 99
        with pytest.raises(ValueError):
            online.partial_fit(tiny_dataset.train_features[:10], labels)

    def test_length_mismatch_rejected(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model)
        with pytest.raises(ValueError):
            online.partial_fit(
                tiny_dataset.train_features[:10], tiny_dataset.train_labels[:9]
            )

    def test_streaming_does_not_destroy_accuracy(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model, learning_rate=0.02)
        before = online.evaluate(tiny_dataset.test_features, tiny_dataset.test_labels)
        for start in range(0, tiny_dataset.num_train, 40):
            online.partial_fit(
                tiny_dataset.train_features[start : start + 40],
                tiny_dataset.train_labels[start : start + 40],
            )
        after = online.evaluate(tiny_dataset.test_features, tiny_dataset.test_labels)
        assert after >= before - 0.10

    def test_repeated_batches_reduce_batch_errors(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model, learning_rate=0.05)
        batch_x = tiny_dataset.train_features[:80]
        batch_y = tiny_dataset.train_labels[:80]
        first = online.partial_fit(batch_x, batch_y)
        for _ in range(5):
            last = online.partial_fit(batch_x, batch_y)
        # Errors on the repeated batch should not grow (small jitter from the
        # global re-binarization threshold is tolerated).
        assert last["updates"] <= first["updates"] + 3

    def test_single_sample_batch(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model)
        stats = online.partial_fit(
            tiny_dataset.train_features[0], tiny_dataset.train_labels[:1]
        )
        assert stats["updates"] in (0, 1)


class TestAddClass:
    def test_add_class_without_growth_keeps_shape(
        self, fitted_model, five_class_dataset
    ):
        online = OnlineMEMHD(fitted_model, rng=np.random.default_rng(0))
        columns_before = fitted_model.associative_memory.num_columns
        new_samples = five_class_dataset.train_features[
            five_class_dataset.train_labels == 4
        ]
        label = online.add_class(new_samples, columns=3)
        am = fitted_model.associative_memory
        assert label == 4
        assert am.num_columns == columns_before
        assert am.num_classes == 5
        assert len(am.columns_of_class(4)) == 3
        # No existing class lost its last column.
        assert all(count >= 1 for count in am.columns_per_class().values())

    def test_add_class_with_growth_appends_columns(
        self, fitted_model, five_class_dataset
    ):
        online = OnlineMEMHD(fitted_model, rng=np.random.default_rng(1))
        columns_before = fitted_model.associative_memory.num_columns
        new_samples = five_class_dataset.train_features[
            five_class_dataset.train_labels == 4
        ]
        online.add_class(new_samples, columns=2, grow=True)
        am = fitted_model.associative_memory
        assert am.num_columns == columns_before + 2
        assert len(am.columns_of_class(4)) == 2

    def test_added_class_is_recognized(self, fitted_model, five_class_dataset):
        online = OnlineMEMHD(fitted_model, rng=np.random.default_rng(2))
        train_mask = five_class_dataset.train_labels == 4
        test_mask = five_class_dataset.test_labels == 4
        online.add_class(five_class_dataset.train_features[train_mask], columns=4)
        # A few partial_fit passes let the new centroids settle.
        for _ in range(3):
            online.partial_fit(
                five_class_dataset.train_features, five_class_dataset.train_labels
            )
        predictions = fitted_model.associative_memory.predict(
            fitted_model.encode_binary(
                five_class_dataset.test_features[test_mask]
            ).astype(np.float64)
        )
        recall = float(np.mean(predictions == 4))
        assert recall > 0.5

    def test_existing_label_rejected(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model)
        with pytest.raises(ValueError):
            online.add_class(tiny_dataset.train_features[:5], new_label=0)

    def test_invalid_columns_rejected(self, fitted_model, five_class_dataset):
        online = OnlineMEMHD(fitted_model)
        samples = five_class_dataset.train_features[:5]
        with pytest.raises(ValueError):
            online.add_class(samples, columns=0)

    def test_empty_samples_rejected(self, fitted_model):
        online = OnlineMEMHD(fitted_model)
        with pytest.raises(ValueError):
            online.add_class(np.empty((0, 24)))


class TestCacheInvalidation:
    """The packed/pruned mirrors can never answer from stale memory.

    ``binary_memory`` is a property whose setter drops the cached
    ``PackedAM`` / ``PrunedAM``; these tests pin every path that
    assigns it -- ``refresh_binary`` after online updates, and the raw
    snapshot-restore assignment the trainer's keep-best rollback and the
    serving runtime's promotion/rollback use.  Without the setter (the
    pre-fix code invalidated only inside ``refresh_binary``) the
    restore test fails: the warm packed cache keeps serving the
    *pre-restore* memory.
    """

    def test_partial_fit_refreshes_packed_and_pruned(
        self, fitted_model, tiny_dataset
    ):
        am = fitted_model.associative_memory
        queries = tiny_dataset.test_features
        # Warm both derived caches on the initial memory.
        fitted_model.predict(queries, engine="packed")
        fitted_model.predict(queries, engine="pruned")
        assert am._packed_am is not None and am._pruned_am is not None
        online = OnlineMEMHD(fitted_model, learning_rate=0.5)
        rng = np.random.default_rng(3)
        online.partial_fit(
            tiny_dataset.train_features[:80],
            rng.permutation(tiny_dataset.train_labels[:80]),
        )
        base = fitted_model.predict(queries, engine="float")
        np.testing.assert_array_equal(
            fitted_model.predict(queries, engine="packed"), base
        )
        np.testing.assert_array_equal(
            fitted_model.predict(queries, engine="pruned"), base
        )

    def test_add_class_refreshes_packed_and_pruned(
        self, fitted_model, five_class_dataset
    ):
        queries = five_class_dataset.test_features
        fitted_model.predict(queries, engine="packed")
        fitted_model.predict(queries, engine="pruned")
        online = OnlineMEMHD(fitted_model, rng=np.random.default_rng(0))
        online.add_class(
            five_class_dataset.train_features[five_class_dataset.train_labels == 4],
            columns=3,
        )
        base = fitted_model.predict(queries, engine="float")
        np.testing.assert_array_equal(
            fitted_model.predict(queries, engine="packed"), base
        )
        np.testing.assert_array_equal(
            fitted_model.predict(queries, engine="pruned"), base
        )

    def test_binary_restore_drops_warm_caches(self, fitted_model, tiny_dataset):
        """Regression: a raw ``binary_memory`` assignment (the keep-best /
        rollback pattern) must invalidate warm packed/pruned caches."""
        am = fitted_model.associative_memory
        queries = tiny_dataset.test_features
        snapshot = am.binary_memory.copy()
        baseline = fitted_model.predict(queries, engine="packed")
        # Drive the memory far from the snapshot (permuted labels), then
        # warm both caches on the *updated* memory.
        online = OnlineMEMHD(fitted_model, learning_rate=0.5)
        rng = np.random.default_rng(0)
        for _ in range(3):
            online.partial_fit(
                tiny_dataset.train_features[:120],
                rng.permutation(tiny_dataset.train_labels[:120]),
            )
        stale = fitted_model.predict(queries, engine="packed")
        fitted_model.predict(queries, engine="pruned")
        assert not np.array_equal(stale, baseline), (
            "updates did not change predictions; the restore scenario "
            "would not exercise the cache"
        )
        # The rollback every restore path performs: assign the snapshot.
        am.binary_memory = snapshot
        assert am._packed_am is None and am._pruned_am is None
        np.testing.assert_array_equal(
            fitted_model.predict(queries, engine="packed"), baseline
        )
        np.testing.assert_array_equal(
            fitted_model.predict(queries, engine="pruned"), baseline
        )


class TestVictimSelection:
    """Edge cases of ``_select_victim_columns`` (column repurposing)."""

    def _single_centroid_model(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=64, columns=tiny_dataset.num_classes, epochs=2,
                        seed=0),
            rng=0,
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        return model

    def test_single_centroid_classes_refuse_repurposing(
        self, tiny_dataset, five_class_dataset
    ):
        model = self._single_centroid_model(tiny_dataset)
        am = model.associative_memory
        assert all(count == 1 for count in am.columns_per_class().values())
        online = OnlineMEMHD(model, rng=np.random.default_rng(0))
        new_samples = five_class_dataset.train_features[
            five_class_dataset.train_labels == 4
        ]
        with pytest.raises(ValueError, match="grow=True"):
            online.add_class(new_samples, columns=1)
        # The failed call must not have corrupted the AM.
        assert am.num_classes == tiny_dataset.num_classes
        assert all(count == 1 for count in am.columns_per_class().values())

    def test_single_centroid_classes_can_still_grow(
        self, tiny_dataset, five_class_dataset
    ):
        model = self._single_centroid_model(tiny_dataset)
        online = OnlineMEMHD(model, rng=np.random.default_rng(0))
        new_samples = five_class_dataset.train_features[
            five_class_dataset.train_labels == 4
        ]
        label = online.add_class(new_samples, columns=1, grow=True)
        am = model.associative_memory
        assert label == 4
        assert am.num_columns == tiny_dataset.num_classes + 1
        assert len(am.columns_of_class(4)) == 1

    def test_repeated_add_class_to_capacity(self, fitted_model, five_class_dataset):
        """Adding classes one by one drains the richest classes first and
        stops (with a clear error) exactly when every class is down to one
        centroid."""
        online = OnlineMEMHD(fitted_model, rng=np.random.default_rng(4))
        am = fitted_model.associative_memory
        columns_total = am.num_columns
        samples = five_class_dataset.train_features[
            five_class_dataset.train_labels == 4
        ]
        # 24 columns over 4 classes: 20 more single-column classes fit
        # before every class owns exactly one centroid.
        capacity = columns_total - fitted_model.num_classes
        for extra in range(capacity):
            label = online.add_class(samples[: 5 + extra % 3], columns=1)
            assert label == 4 + extra
            assert am.num_columns == columns_total  # shape never changes
            assert min(am.columns_per_class().values()) >= 1
        assert all(count == 1 for count in am.columns_per_class().values())
        with pytest.raises(ValueError, match="grow=True"):
            online.add_class(samples[:5], columns=1)
