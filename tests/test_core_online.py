"""Unit tests for repro.core.online (OnlineMEMHD)."""

import numpy as np
import pytest

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.core.online import OnlineMEMHD
from repro.data.synthetic import SyntheticSpec, make_synthetic_dataset


@pytest.fixture()
def fitted_model(tiny_dataset):
    model = MEMHDModel(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        MEMHDConfig(dimension=64, columns=24, epochs=5, seed=0),
        rng=0,
    )
    model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
    return model


@pytest.fixture()
def five_class_dataset():
    """A dataset with one extra class, sharing the tiny dataset's geometry."""
    spec = SyntheticSpec(
        num_classes=5,
        num_features=24,
        train_per_class=60,
        test_per_class=20,
        modes_per_class=3,
        latent_dim=8,
        class_separation=3.0,
        noise_scale=0.3,
    )
    return make_synthetic_dataset("tiny5", spec, rng=7)


class TestConstruction:
    def test_requires_fitted_model(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=32, columns=8),
        )
        with pytest.raises(RuntimeError):
            OnlineMEMHD(model)

    def test_default_learning_rate_from_config(self, fitted_model):
        online = OnlineMEMHD(fitted_model)
        assert online.learning_rate == fitted_model.config.learning_rate

    def test_invalid_learning_rate(self, fitted_model):
        with pytest.raises(ValueError):
            OnlineMEMHD(fitted_model, learning_rate=0.0)


class TestPartialFit:
    def test_returns_batch_statistics(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model)
        stats = online.partial_fit(
            tiny_dataset.train_features[:50], tiny_dataset.train_labels[:50]
        )
        assert set(stats) == {"batch_accuracy_before", "batch_accuracy_after", "updates"}
        assert 0 <= stats["updates"] <= 50

    def test_unknown_label_rejected(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model)
        labels = tiny_dataset.train_labels[:10].copy()
        labels[0] = 99
        with pytest.raises(ValueError):
            online.partial_fit(tiny_dataset.train_features[:10], labels)

    def test_length_mismatch_rejected(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model)
        with pytest.raises(ValueError):
            online.partial_fit(
                tiny_dataset.train_features[:10], tiny_dataset.train_labels[:9]
            )

    def test_streaming_does_not_destroy_accuracy(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model, learning_rate=0.02)
        before = online.evaluate(tiny_dataset.test_features, tiny_dataset.test_labels)
        for start in range(0, tiny_dataset.num_train, 40):
            online.partial_fit(
                tiny_dataset.train_features[start : start + 40],
                tiny_dataset.train_labels[start : start + 40],
            )
        after = online.evaluate(tiny_dataset.test_features, tiny_dataset.test_labels)
        assert after >= before - 0.10

    def test_repeated_batches_reduce_batch_errors(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model, learning_rate=0.05)
        batch_x = tiny_dataset.train_features[:80]
        batch_y = tiny_dataset.train_labels[:80]
        first = online.partial_fit(batch_x, batch_y)
        for _ in range(5):
            last = online.partial_fit(batch_x, batch_y)
        # Errors on the repeated batch should not grow (small jitter from the
        # global re-binarization threshold is tolerated).
        assert last["updates"] <= first["updates"] + 3

    def test_single_sample_batch(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model)
        stats = online.partial_fit(
            tiny_dataset.train_features[0], tiny_dataset.train_labels[:1]
        )
        assert stats["updates"] in (0, 1)


class TestAddClass:
    def test_add_class_without_growth_keeps_shape(
        self, fitted_model, five_class_dataset
    ):
        online = OnlineMEMHD(fitted_model, rng=np.random.default_rng(0))
        columns_before = fitted_model.associative_memory.num_columns
        new_samples = five_class_dataset.train_features[
            five_class_dataset.train_labels == 4
        ]
        label = online.add_class(new_samples, columns=3)
        am = fitted_model.associative_memory
        assert label == 4
        assert am.num_columns == columns_before
        assert am.num_classes == 5
        assert len(am.columns_of_class(4)) == 3
        # No existing class lost its last column.
        assert all(count >= 1 for count in am.columns_per_class().values())

    def test_add_class_with_growth_appends_columns(
        self, fitted_model, five_class_dataset
    ):
        online = OnlineMEMHD(fitted_model, rng=np.random.default_rng(1))
        columns_before = fitted_model.associative_memory.num_columns
        new_samples = five_class_dataset.train_features[
            five_class_dataset.train_labels == 4
        ]
        online.add_class(new_samples, columns=2, grow=True)
        am = fitted_model.associative_memory
        assert am.num_columns == columns_before + 2
        assert len(am.columns_of_class(4)) == 2

    def test_added_class_is_recognized(self, fitted_model, five_class_dataset):
        online = OnlineMEMHD(fitted_model, rng=np.random.default_rng(2))
        train_mask = five_class_dataset.train_labels == 4
        test_mask = five_class_dataset.test_labels == 4
        online.add_class(five_class_dataset.train_features[train_mask], columns=4)
        # A few partial_fit passes let the new centroids settle.
        for _ in range(3):
            online.partial_fit(
                five_class_dataset.train_features, five_class_dataset.train_labels
            )
        predictions = fitted_model.associative_memory.predict(
            fitted_model.encode_binary(
                five_class_dataset.test_features[test_mask]
            ).astype(np.float64)
        )
        recall = float(np.mean(predictions == 4))
        assert recall > 0.5

    def test_existing_label_rejected(self, fitted_model, tiny_dataset):
        online = OnlineMEMHD(fitted_model)
        with pytest.raises(ValueError):
            online.add_class(tiny_dataset.train_features[:5], new_label=0)

    def test_invalid_columns_rejected(self, fitted_model, five_class_dataset):
        online = OnlineMEMHD(fitted_model)
        samples = five_class_dataset.train_features[:5]
        with pytest.raises(ValueError):
            online.add_class(samples, columns=0)

    def test_empty_samples_rejected(self, fitted_model):
        online = OnlineMEMHD(fitted_model)
        with pytest.raises(ValueError):
            online.add_class(np.empty((0, 24)))
