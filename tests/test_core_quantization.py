"""Unit tests for repro.core.quantization."""

import numpy as np
import pytest

from repro.core.quantization import (
    mean_threshold_binarize,
    normalize_rows,
    quantization_error,
)


class TestMeanThresholdBinarize:
    def test_global_mean_threshold(self):
        memory = np.array([[0.0, 1.0], [2.0, 3.0]])
        # Global mean is 1.5; entries strictly greater become 1.
        expected = np.array([[0, 0], [1, 1]], dtype=np.int8)
        assert np.array_equal(mean_threshold_binarize(memory), expected)

    def test_output_dtype_and_alphabet(self):
        memory = np.random.default_rng(0).normal(size=(6, 10))
        binary = mean_threshold_binarize(memory)
        assert binary.dtype == np.int8
        assert set(np.unique(binary)) <= {0, 1}

    def test_row_mean_threshold(self):
        memory = np.array([[0.0, 1.0], [10.0, 20.0]])
        expected = np.array([[0, 1], [0, 1]], dtype=np.int8)
        assert np.array_equal(mean_threshold_binarize(memory, "row-mean"), expected)

    def test_gaussian_memory_is_roughly_balanced(self):
        memory = np.random.default_rng(1).normal(size=(50, 200))
        binary = mean_threshold_binarize(memory)
        assert 0.45 < binary.mean() < 0.55

    def test_strictly_greater_semantics(self):
        memory = np.full((2, 4), 3.0)
        # Every entry equals the mean, so nothing exceeds it strictly.
        assert mean_threshold_binarize(memory).sum() == 0

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            mean_threshold_binarize(np.zeros((2, 2)), "bogus")

    def test_1d_input_raises(self):
        with pytest.raises(ValueError):
            mean_threshold_binarize(np.zeros(4))


class TestNormalizeRows:
    def test_zscore_rows(self):
        memory = np.random.default_rng(2).normal(3.0, 2.0, size=(8, 64))
        normalized = normalize_rows(memory, "zscore")
        assert np.allclose(normalized.mean(axis=1), 0.0, atol=1e-10)
        assert np.allclose(normalized.std(axis=1), 1.0, atol=1e-10)

    def test_l2_rows(self):
        memory = np.random.default_rng(3).normal(size=(8, 64))
        normalized = normalize_rows(memory, "l2")
        assert np.allclose(np.linalg.norm(normalized, axis=1), 1.0)

    def test_none_is_copy(self):
        memory = np.random.default_rng(4).normal(size=(3, 5))
        normalized = normalize_rows(memory, "none")
        assert np.array_equal(normalized, memory)
        normalized[0, 0] = 99.0
        assert memory[0, 0] != 99.0

    def test_degenerate_rows_survive(self):
        memory = np.vstack([np.zeros(5), np.ones(5)])
        for mode in ("zscore", "l2"):
            normalized = normalize_rows(memory, mode)
            assert np.all(np.isfinite(normalized))

    def test_does_not_mutate_input(self):
        memory = np.random.default_rng(5).normal(size=(3, 5))
        original = memory.copy()
        normalize_rows(memory, "zscore")
        assert np.array_equal(memory, original)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            normalize_rows(np.zeros((2, 2)), "bogus")

    def test_1d_raises(self):
        with pytest.raises(ValueError):
            normalize_rows(np.zeros(4))

    def test_zscore_preserves_rowwise_ranking(self):
        memory = np.random.default_rng(6).normal(size=(4, 20))
        normalized = normalize_rows(memory, "zscore")
        for row, normalized_row in zip(memory, normalized):
            assert np.array_equal(np.argsort(row), np.argsort(normalized_row))


class TestQuantizationError:
    def test_zero_error_for_matching_sign_pattern(self):
        fp = np.array([[1.0, -1.0, 1.0, -1.0]] * 3)
        binary = (fp > 0).astype(np.int8)
        mse, ones_fraction = quantization_error(fp, binary)
        assert mse == pytest.approx(0.0)
        assert ones_fraction == pytest.approx(0.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            quantization_error(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_error_increases_when_binary_is_inverted(self):
        fp = np.random.default_rng(7).normal(size=(5, 50))
        binary = mean_threshold_binarize(fp)
        good_mse, _ = quantization_error(fp, binary)
        bad_mse, _ = quantization_error(fp, 1 - binary)
        assert bad_mse > good_mse
