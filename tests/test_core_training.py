"""Unit tests for repro.core.training (quantization-aware iterative learning)."""

import numpy as np
import pytest

from repro.core.associative_memory import MultiCentroidAM
from repro.core.initialization import clustering_initialization
from repro.core.training import QuantizationAwareTrainer
from repro.eval.metrics import accuracy


@pytest.fixture()
def am_and_data(encoded_training_data):
    encoded, labels = encoded_training_data
    init = clustering_initialization(
        encoded, labels, columns=16, num_classes=4, cluster_ratio=0.75, rng=1
    )
    am = MultiCentroidAM(init.fp_memory, init.column_classes, num_classes=4)
    return am, encoded, labels


class TestTrainerValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"epochs": -1},
            {"binary_update_interval": 0},
            {"early_stop_patience": 0},
        ],
    )
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            QuantizationAwareTrainer(**kwargs)

    def test_dimension_mismatch_raises(self, am_and_data):
        am, encoded, labels = am_and_data
        trainer = QuantizationAwareTrainer(epochs=1)
        with pytest.raises(ValueError):
            trainer.train(am, encoded[:, :-1], labels)

    def test_length_mismatch_raises(self, am_and_data):
        am, encoded, labels = am_and_data
        trainer = QuantizationAwareTrainer(epochs=1)
        with pytest.raises(ValueError):
            trainer.train(am, encoded, labels[:-1])

    def test_1d_encoded_raises(self, am_and_data):
        am, encoded, labels = am_and_data
        trainer = QuantizationAwareTrainer(epochs=1)
        with pytest.raises(ValueError):
            trainer.train(am, encoded[0], labels[:1])


class TestTrainingDynamics:
    def test_history_lengths(self, am_and_data):
        am, encoded, labels = am_and_data
        trainer = QuantizationAwareTrainer(epochs=5, learning_rate=0.05)
        history = trainer.train(am, encoded, labels, rng=np.random.default_rng(0))
        assert history.epochs <= 5
        assert len(history.updates) == history.epochs
        assert history.initial_accuracy is not None

    def test_training_improves_accuracy(self, am_and_data):
        am, encoded, labels = am_and_data
        trainer = QuantizationAwareTrainer(epochs=10, learning_rate=0.05)
        history = trainer.train(am, encoded, labels, rng=np.random.default_rng(1))
        assert history.best_train_accuracy >= history.initial_accuracy

    def test_updates_equal_mispredictions(self, am_and_data):
        am, encoded, labels = am_and_data
        trainer = QuantizationAwareTrainer(epochs=3, learning_rate=0.05)
        history = trainer.train(am, encoded, labels, rng=np.random.default_rng(2))
        assert all(0 <= count <= labels.size for count in history.updates)

    def test_validation_tracked(self, am_and_data):
        am, encoded, labels = am_and_data
        trainer = QuantizationAwareTrainer(epochs=3)
        history = trainer.train(
            am,
            encoded,
            labels,
            validation=(encoded[:40], labels[:40]),
            rng=np.random.default_rng(3),
        )
        assert len(history.validation_accuracy) == history.epochs

    def test_zero_epochs_keeps_initial_state(self, am_and_data):
        am, encoded, labels = am_and_data
        binary_before = am.binary_memory.copy()
        trainer = QuantizationAwareTrainer(epochs=0)
        history = trainer.train(am, encoded, labels)
        assert history.train_accuracy == [history.initial_accuracy]
        assert np.array_equal(am.binary_memory, binary_before)

    def test_stops_when_no_mispredictions(self, encoded_training_data):
        encoded, labels = encoded_training_data
        # A memory that already classifies everything perfectly: one column
        # per class equal to that class's mean pattern scaled up.
        init = clustering_initialization(
            encoded, labels, columns=8, num_classes=4, cluster_ratio=1.0, rng=0
        )
        am = MultiCentroidAM(init.fp_memory, init.column_classes, num_classes=4)
        trainer = QuantizationAwareTrainer(epochs=50, learning_rate=0.01)
        history = trainer.train(am, encoded, labels, rng=np.random.default_rng(4))
        if history.updates and history.updates[-1] == 0:
            assert history.epochs < 50

    def test_early_stopping(self, am_and_data):
        am, encoded, labels = am_and_data
        trainer = QuantizationAwareTrainer(
            epochs=40, learning_rate=0.05, early_stop_patience=2
        )
        history = trainer.train(am, encoded, labels, rng=np.random.default_rng(5))
        assert history.epochs <= 40

    def test_binary_update_interval(self, am_and_data):
        am, encoded, labels = am_and_data
        trainer = QuantizationAwareTrainer(
            epochs=4, learning_rate=0.05, binary_update_interval=2
        )
        history = trainer.train(am, encoded, labels, rng=np.random.default_rng(6))
        assert history.epochs <= 4

    def test_final_binary_memory_is_consistent_with_fp_without_keep_best(
        self, am_and_data
    ):
        am, encoded, labels = am_and_data
        trainer = QuantizationAwareTrainer(epochs=3, learning_rate=0.05, keep_best=False)
        trainer.train(am, encoded, labels, rng=np.random.default_rng(7))
        expected = am.copy()
        expected.refresh_binary()
        assert np.array_equal(am.binary_memory, expected.binary_memory)

    def test_keep_best_never_ends_below_initial_accuracy(self, am_and_data):
        am, encoded, labels = am_and_data
        trainer = QuantizationAwareTrainer(
            epochs=10, learning_rate=0.5, keep_best=True
        )
        history = trainer.train(am, encoded, labels, rng=np.random.default_rng(8))
        final = accuracy(am.predict(encoded), labels)
        # Even with an aggressive learning rate the deployed binary memory is
        # the best snapshot seen, so it cannot fall below the initial state.
        assert final >= history.initial_accuracy - 1e-12
        assert final == pytest.approx(max([history.initial_accuracy] + history.train_accuracy))

    def test_deterministic_given_rng(self, encoded_training_data):
        encoded, labels = encoded_training_data

        def run():
            init = clustering_initialization(
                encoded, labels, columns=16, num_classes=4, rng=9
            )
            am = MultiCentroidAM(init.fp_memory, init.column_classes, num_classes=4)
            trainer = QuantizationAwareTrainer(epochs=4, learning_rate=0.05)
            trainer.train(am, encoded, labels, rng=np.random.default_rng(11))
            return am.binary_memory.copy()

        assert np.array_equal(run(), run())


class TestUpdateTargetSelection:
    def test_eq4_eq5_targets(self):
        """Hand-crafted case checking the Eq. (4)/(5) target selection.

        The FP memory below binarizes (row-mean threshold, no normalization)
        to the binary rows

            col 0 (class 0): [1, 1, 0, 0]
            col 1 (class 0): [1, 0, 0, 0]
            col 2 (class 1): [0, 0, 1, 1]
            col 3 (class 1): [0, 1, 1, 1]

        so the query ``[0, 1, 1, 1]`` with true label 0 scores (1, 0, 2, 3):
        the associative search wrongly picks column 3 (class 1), the Eq. (4)
        target, while the most similar column *within* class 0 is column 0,
        the Eq. (5) target.
        """
        fp = np.array(
            [
                [5.0, 5.0, 0.0, 0.0],   # class 0, column 0
                [5.0, 0.0, 0.0, 0.0],   # class 0, column 1
                [0.0, 0.0, 5.0, 5.0],   # class 1, column 2
                [0.0, 5.0, 5.0, 5.0],   # class 1, column 3
            ]
        )
        column_classes = np.array([0, 0, 1, 1])
        am = MultiCentroidAM(
            fp.copy(), column_classes, num_classes=2, normalization="none",
            threshold_mode="row-mean",
        )
        assert np.array_equal(
            am.binary_memory,
            np.array([[1, 1, 0, 0], [1, 0, 0, 0], [0, 0, 1, 1], [0, 1, 1, 1]]),
        )
        query = np.array([[0.0, 1.0, 1.0, 1.0]])
        label = np.array([0])

        trainer = QuantizationAwareTrainer(epochs=1, learning_rate=1.0, shuffle=False)
        fp_before = am.fp_memory.copy()
        trainer.train(am, query, label, rng=np.random.default_rng(0))

        assert np.allclose(am.fp_memory[0], fp_before[0] + query[0])   # Eq. (5)
        assert np.allclose(am.fp_memory[3], fp_before[3] - query[0])   # Eq. (4)
        assert np.allclose(am.fp_memory[1], fp_before[1])
        assert np.allclose(am.fp_memory[2], fp_before[2])
