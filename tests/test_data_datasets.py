"""Unit tests for repro.data.datasets."""

import os

import numpy as np
import pytest

from repro.data.datasets import (
    DATASET_PROFILES,
    Dataset,
    DatasetSplits,
    available_datasets,
    load_dataset,
)


class TestDatasetContainer:
    def _make(self, **overrides):
        defaults = dict(
            name="demo",
            train_features=np.random.default_rng(0).random((20, 5)),
            train_labels=np.repeat(np.arange(4), 5),
            test_features=np.random.default_rng(1).random((8, 5)),
            test_labels=np.repeat(np.arange(4), 2),
        )
        defaults.update(overrides)
        return Dataset(**defaults)

    def test_basic_properties(self):
        dataset = self._make()
        assert dataset.num_features == 5
        assert dataset.num_classes == 4
        assert dataset.num_train == 20
        assert dataset.num_test == 8

    def test_class_counts(self):
        dataset = self._make()
        assert np.array_equal(dataset.class_counts("train"), [5, 5, 5, 5])
        assert np.array_equal(dataset.class_counts("test"), [2, 2, 2, 2])

    def test_arrays_cast_to_canonical_dtypes(self):
        dataset = self._make(train_labels=np.repeat(np.arange(4), 5).astype(np.int8))
        assert dataset.train_labels.dtype == np.int64
        assert dataset.train_features.dtype == np.float64

    def test_feature_label_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            self._make(train_labels=np.zeros(3, dtype=int))

    def test_train_test_feature_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            self._make(test_features=np.zeros((8, 6)))

    def test_1d_features_raise(self):
        with pytest.raises(ValueError):
            self._make(train_features=np.zeros(20))

    def test_splits_helper(self):
        dataset = self._make()
        splits = DatasetSplits.from_dataset(dataset)
        assert np.array_equal(splits.train_x, dataset.train_features)
        assert np.array_equal(splits.test_y, dataset.test_labels)


class TestProfilesAndLoader:
    def test_available_datasets(self):
        assert set(available_datasets()) == {"mnist", "fmnist", "isolet"}

    def test_profiles_match_paper_shapes(self):
        assert DATASET_PROFILES["mnist"].num_features == 784
        assert DATASET_PROFILES["mnist"].num_classes == 10
        assert DATASET_PROFILES["fmnist"].num_features == 784
        assert DATASET_PROFILES["isolet"].num_features == 617
        assert DATASET_PROFILES["isolet"].num_classes == 26
        assert DATASET_PROFILES["isolet"].train_per_class == 240

    def test_profile_spec_scaling(self):
        spec = DATASET_PROFILES["mnist"].spec(scale=0.01)
        assert spec.train_per_class == 60
        assert spec.num_features == 784
        assert spec.num_classes == 10

    def test_profile_spec_invalid_scale(self):
        with pytest.raises(ValueError):
            DATASET_PROFILES["mnist"].spec(scale=0.0)

    def test_load_dataset_synthetic_fallback(self):
        dataset = load_dataset("isolet", scale=0.05)
        assert dataset.synthetic is True
        assert dataset.num_features == 617
        assert dataset.num_classes == 26

    def test_load_dataset_is_deterministic_by_default(self):
        a = load_dataset("mnist", scale=0.01)
        b = load_dataset("mnist", scale=0.01)
        assert np.array_equal(a.train_features, b.train_features)

    def test_load_dataset_custom_seed_changes_data(self):
        a = load_dataset("mnist", scale=0.01, rng=1)
        b = load_dataset("mnist", scale=0.01, rng=2)
        assert not np.array_equal(a.train_features, b.train_features)

    def test_load_dataset_case_insensitive(self):
        dataset = load_dataset("MNIST", scale=0.01)
        assert dataset.name == "mnist"

    def test_load_dataset_unknown_raises(self):
        with pytest.raises(ValueError):
            load_dataset("cifar10")

    def test_scale_controls_sample_count(self):
        small = load_dataset("mnist", scale=0.01)
        larger = load_dataset("mnist", scale=0.02)
        assert larger.num_train > small.num_train

    def test_features_normalized(self):
        dataset = load_dataset("fmnist", scale=0.01)
        assert dataset.train_features.min() >= 0.0
        assert dataset.train_features.max() <= 1.0


class TestNpzLoading:
    def test_real_npz_is_preferred(self, tmp_path):
        rng = np.random.default_rng(0)
        path = tmp_path / "mnist.npz"
        np.savez(
            path,
            train_x=rng.random((40, 784)) * 255,
            train_y=np.repeat(np.arange(10), 4),
            test_x=rng.random((10, 784)) * 255,
            test_y=np.arange(10),
        )
        dataset = load_dataset("mnist", data_dir=str(tmp_path))
        assert dataset.synthetic is False
        assert dataset.num_train == 40
        # Values above 1 must be rescaled into [0, 1].
        assert dataset.train_features.max() <= 1.0

    def test_npz_missing_arrays_raises(self, tmp_path):
        path = tmp_path / "mnist.npz"
        np.savez(path, train_x=np.zeros((4, 784)))
        with pytest.raises(ValueError):
            load_dataset("mnist", data_dir=str(tmp_path))

    def test_env_var_data_dir(self, tmp_path, monkeypatch):
        rng = np.random.default_rng(1)
        np.savez(
            tmp_path / "isolet.npz",
            train_x=rng.random((26, 617)),
            train_y=np.arange(26),
            test_x=rng.random((26, 617)),
            test_y=np.arange(26),
        )
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        dataset = load_dataset("isolet")
        assert dataset.synthetic is False
