"""Unit tests for repro.data.preprocessing."""

import numpy as np
import pytest

from repro.data.preprocessing import (
    minmax_normalize,
    standardize,
    stratified_subsample,
    train_test_split,
)


class TestMinMaxNormalize:
    def test_output_range(self):
        data = np.random.default_rng(0).normal(5, 3, size=(50, 4))
        scaled = minmax_normalize(data)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0

    def test_columns_span_full_range(self):
        data = np.random.default_rng(1).normal(size=(100, 3))
        scaled = minmax_normalize(data)
        assert np.allclose(scaled.min(axis=0), 0.0)
        assert np.allclose(scaled.max(axis=0), 1.0)

    def test_constant_column_does_not_divide_by_zero(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        scaled = minmax_normalize(data)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 0], 0.0)

    def test_reference_scaling_avoids_leakage(self):
        train = np.array([[0.0], [10.0]])
        test = np.array([[5.0], [20.0]])
        scaled = minmax_normalize(test, reference=train)
        assert scaled[0, 0] == pytest.approx(0.5)
        assert scaled[1, 0] == pytest.approx(1.0)  # clipped


class TestStandardize:
    def test_zero_mean_unit_std(self):
        data = np.random.default_rng(2).normal(3, 2, size=(200, 5))
        scaled = standardize(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_safe(self):
        data = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        scaled = standardize(data)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 0], 0.0)

    def test_reference(self):
        train = np.array([[0.0], [2.0]])
        test = np.array([[1.0]])
        scaled = standardize(test, reference=train)
        assert scaled[0, 0] == pytest.approx(0.0)


class TestTrainTestSplit:
    def _data(self, n_per_class=20, classes=4, features=3, seed=0):
        gen = np.random.default_rng(seed)
        x = gen.random((n_per_class * classes, features))
        y = np.repeat(np.arange(classes), n_per_class)
        return x, y

    def test_sizes(self):
        x, y = self._data()
        train_x, train_y, test_x, test_y = train_test_split(x, y, 0.25, rng=0)
        assert train_x.shape[0] + test_x.shape[0] == x.shape[0]
        assert train_x.shape[0] == train_y.shape[0]
        assert test_x.shape[0] == test_y.shape[0]
        assert abs(test_x.shape[0] - 0.25 * x.shape[0]) <= 4

    def test_stratified_keeps_all_classes(self):
        x, y = self._data()
        _, train_y, _, test_y = train_test_split(x, y, 0.25, rng=1)
        assert set(np.unique(train_y)) == {0, 1, 2, 3}
        assert set(np.unique(test_y)) == {0, 1, 2, 3}

    def test_no_overlap_between_splits(self):
        x, y = self._data()
        x_ids = np.arange(x.shape[0]).reshape(-1, 1).astype(float)
        train_x, _, test_x, _ = train_test_split(x_ids, y, 0.3, rng=2)
        assert set(train_x.ravel()).isdisjoint(set(test_x.ravel()))
        assert len(train_x) + len(test_x) == x.shape[0]

    def test_unstratified_split(self):
        x, y = self._data()
        train_x, _, test_x, _ = train_test_split(x, y, 0.2, rng=3, stratify=False)
        assert train_x.shape[0] + test_x.shape[0] == x.shape[0]

    def test_deterministic(self):
        x, y = self._data()
        a = train_test_split(x, y, 0.2, rng=9)
        b = train_test_split(x, y, 0.2, rng=9)
        assert np.array_equal(a[0], b[0])

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.2, 1.5])
    def test_invalid_fraction_raises(self, fraction):
        x, y = self._data()
        with pytest.raises(ValueError):
            train_test_split(x, y, fraction)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 2)), np.zeros(4))


class TestStratifiedSubsample:
    def test_caps_per_class(self):
        x = np.random.default_rng(0).random((100, 2))
        y = np.repeat(np.arange(4), 25)
        sub_x, sub_y = stratified_subsample(x, y, per_class=5, rng=0)
        assert sub_x.shape == (20, 2)
        assert np.array_equal(np.bincount(sub_y), [5, 5, 5, 5])

    def test_small_classes_kept_whole(self):
        x = np.random.default_rng(1).random((7, 2))
        y = np.array([0, 0, 0, 0, 0, 1, 1])
        _, sub_y = stratified_subsample(x, y, per_class=4, rng=1)
        assert np.bincount(sub_y)[1] == 2

    def test_invalid_per_class(self):
        with pytest.raises(ValueError):
            stratified_subsample(np.zeros((3, 1)), np.zeros(3, dtype=int), per_class=0)

    def test_no_duplicates(self):
        x = np.arange(30).reshape(-1, 1).astype(float)
        y = np.repeat(np.arange(3), 10)
        sub_x, _ = stratified_subsample(x, y, per_class=6, rng=2)
        assert len(np.unique(sub_x)) == len(sub_x)
