"""Unit tests for repro.data.synthetic."""

import numpy as np
import pytest

from repro.data.synthetic import (
    SyntheticSpec,
    make_multimodal_classification,
    make_synthetic_dataset,
)


def small_spec(**overrides):
    defaults = dict(
        num_classes=3,
        num_features=12,
        train_per_class=30,
        test_per_class=10,
        modes_per_class=2,
        latent_dim=5,
        class_separation=3.0,
        noise_scale=0.2,
    )
    defaults.update(overrides)
    return SyntheticSpec(**defaults)


class TestSyntheticSpec:
    def test_defaults_are_valid(self):
        spec = SyntheticSpec()
        assert spec.num_classes == 10
        assert spec.mode_assignment == "interleaved"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_classes", 0),
            ("num_features", -1),
            ("train_per_class", 0),
            ("test_per_class", 0),
            ("modes_per_class", 0),
            ("latent_dim", 0),
        ],
    )
    def test_non_positive_counts_raise(self, field, value):
        with pytest.raises(ValueError):
            small_spec(**{field: value})

    @pytest.mark.parametrize(
        "field", ["class_separation", "mode_spread", "noise_scale"]
    )
    def test_negative_scales_raise(self, field):
        with pytest.raises(ValueError):
            small_spec(**{field: -0.1})

    def test_invalid_mode_assignment_raises(self):
        with pytest.raises(ValueError):
            small_spec(mode_assignment="other")

    def test_spec_is_frozen(self):
        spec = small_spec()
        with pytest.raises(Exception):
            spec.num_classes = 5


class TestMakeMultimodalClassification:
    def test_split_shapes(self):
        spec = small_spec()
        train_x, train_y, test_x, test_y = make_multimodal_classification(spec, rng=0)
        assert train_x.shape == (90, 12)
        assert train_y.shape == (90,)
        assert test_x.shape == (30, 12)
        assert test_y.shape == (30,)

    def test_feature_range_is_unit_interval(self):
        spec = small_spec()
        train_x, _, test_x, _ = make_multimodal_classification(spec, rng=1)
        assert train_x.min() >= 0.0 and train_x.max() <= 1.0
        assert test_x.min() >= 0.0 and test_x.max() <= 1.0

    def test_every_class_present_with_expected_counts(self):
        spec = small_spec()
        _, train_y, _, test_y = make_multimodal_classification(spec, rng=2)
        assert np.array_equal(np.bincount(train_y), [30, 30, 30])
        assert np.array_equal(np.bincount(test_y), [10, 10, 10])

    def test_deterministic_given_seed(self):
        spec = small_spec()
        a = make_multimodal_classification(spec, rng=5)
        b = make_multimodal_classification(spec, rng=5)
        for left, right in zip(a, b):
            assert np.array_equal(left, right)

    def test_different_seeds_give_different_data(self):
        spec = small_spec()
        a = make_multimodal_classification(spec, rng=1)[0]
        b = make_multimodal_classification(spec, rng=2)[0]
        assert not np.array_equal(a, b)

    def test_labels_are_shuffled(self):
        spec = small_spec()
        _, train_y, _, _ = make_multimodal_classification(spec, rng=3)
        # Class blocks must not be contiguous after shuffling.
        assert not np.array_equal(train_y, np.sort(train_y))

    def test_classes_are_separable_by_a_simple_classifier(self):
        """Nearest-mode-centroid error should be far below chance."""
        spec = small_spec(class_separation=5.0, noise_scale=0.1)
        train_x, train_y, test_x, test_y = make_multimodal_classification(spec, rng=4)
        correct = 0
        for x, y in zip(test_x, test_y):
            distances = np.linalg.norm(train_x - x, axis=1)
            correct += int(train_y[np.argmin(distances)] == y)
        assert correct / test_y.size > 0.8

    def test_interleaved_classes_are_multimodal(self):
        """With interleaved modes the class mean is a poor prototype.

        Nearest-class-mean accuracy should be clearly worse than 1-NN, which
        is exactly the regime the multi-centroid AM targets.
        """
        spec = small_spec(
            num_classes=4,
            modes_per_class=4,
            train_per_class=80,
            test_per_class=30,
            class_separation=4.0,
            noise_scale=0.2,
        )
        train_x, train_y, test_x, test_y = make_multimodal_classification(spec, rng=6)
        means = np.vstack([train_x[train_y == c].mean(axis=0) for c in range(4)])
        mean_pred = np.argmin(
            np.linalg.norm(test_x[:, None, :] - means[None, :, :], axis=2), axis=1
        )
        mean_acc = float(np.mean(mean_pred == test_y))

        nn_pred = train_y[
            np.argmin(np.linalg.norm(test_x[:, None, :] - train_x[None, :, :], axis=2), axis=1)
        ]
        nn_acc = float(np.mean(nn_pred == test_y))
        assert nn_acc > mean_acc + 0.1

    def test_compact_mode_is_nearly_unimodal(self):
        """Compact assignment should be easy for a nearest-mean classifier."""
        spec = small_spec(
            mode_assignment="compact",
            class_separation=6.0,
            mode_spread=0.5,
            noise_scale=0.1,
        )
        train_x, train_y, test_x, test_y = make_multimodal_classification(spec, rng=7)
        means = np.vstack([train_x[train_y == c].mean(axis=0) for c in range(3)])
        pred = np.argmin(
            np.linalg.norm(test_x[:, None, :] - means[None, :, :], axis=2), axis=1
        )
        assert float(np.mean(pred == test_y)) > 0.9


class TestMakeSyntheticDataset:
    def test_dataset_container_fields(self):
        dataset = make_synthetic_dataset("unit", small_spec(), rng=0)
        assert dataset.name == "unit"
        assert dataset.synthetic is True
        assert dataset.num_features == 12
        assert dataset.num_classes == 3
        assert dataset.num_train == 90
        assert dataset.num_test == 30

    def test_summary(self):
        dataset = make_synthetic_dataset("unit", small_spec(), rng=0)
        summary = dataset.summary()
        assert summary["name"] == "unit"
        assert summary["num_classes"] == 3
