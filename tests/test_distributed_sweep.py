"""Chaos/differential harness for distributed elastic sweeps.

The contract under test (``repro.eval.distributed``): workers sharing a
store directory complete the grid *exactly once per cell* through lease
files, surviving worker death mid-cell.  The harness runs real
subprocess workers over one shared tmpdir, SIGKILLs one mid-cell, and
asserts the survivors' store is cell-for-cell identical (config hashes +
deterministic metrics) to a single-worker oneshot run -- the same
equivalence CI's ``sweep diff`` gate checks.
"""

import json
import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.eval.distributed import (
    LeaseDir,
    pool_status,
    read_events,
    run_distributed,
    run_distributed_pool,
    store_paths,
)
from repro.eval.store import ResultStore
from repro.eval.sweep import DELAY_ENV, SweepSpec, run_sweep

#: The chaos grid: 4 quick deterministic cells (2 models x 2 dimensions).
CHAOS_SPEC = SweepSpec(
    models=("memhd", "basichdc"),
    datasets=("mnist",),
    dimensions=(32, 48),
    columns=(16,),
    engines=("float",),
    scale=0.01,
    epochs=1,
    seed=11,
)

#: Short lease TTL so a SIGKILLed worker's cell is reclaimed within the test.
TTL_S = 1.5


def _worker_main(spec_payload, store_dir, worker_id, ttl_s, delay_s, max_cells):
    """Subprocess entry: one elastic worker (module-level: picklable)."""
    if delay_s:
        os.environ[DELAY_ENV] = str(delay_s)
    spec = SweepSpec.from_dict(spec_payload)
    result = run_distributed(
        spec,
        store_dir,
        worker_id=worker_id,
        ttl_s=ttl_s,
        poll_s=0.05,
        max_cells=max_cells,
    )
    raise SystemExit(0 if result.ok or max_cells is not None else 1)


def _start_worker(store_dir, worker_id, delay_s=0.0, max_cells=None, spec=CHAOS_SPEC):
    context = multiprocessing.get_context("fork")
    process = context.Process(
        target=_worker_main,
        args=(spec.to_dict(), str(store_dir), worker_id, TTL_S, delay_s, max_cells),
    )
    process.start()
    return process


def _wait_for(predicate, timeout=30.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return None


@pytest.fixture(scope="module")
def oneshot_store(tmp_path_factory):
    """Single-worker reference run of the chaos grid."""
    path = tmp_path_factory.mktemp("oneshot") / "reference.jsonl"
    result = run_sweep(CHAOS_SPEC, ResultStore(path), workers=1)
    assert result.ok
    return path


# --------------------------------------------------------------------------
# The headline chaos test
# --------------------------------------------------------------------------
class TestChaosEquivalence:
    def test_sigkill_mid_cell_reclaim_and_bit_identical_store(
        self, tmp_path, oneshot_store
    ):
        """3 workers, one SIGKILLed mid-cell: grid completes, store matches.

        The kill lands inside a cell (the worker sleeps ``DELAY_ENV``
        seconds after claiming), so its lease is left behind un-released;
        survivors must wait out the TTL, reclaim the cell, and finish the
        grid with results identical to the oneshot reference.
        """
        store_dir = tmp_path / "pool"
        paths = store_paths(store_dir)
        victim = _start_worker(store_dir, "victim", delay_s=6.0)
        claimed = _wait_for(
            lambda: [
                entry
                for entry in read_events(paths["events"])
                if entry["worker"] == "victim"
                and entry["event"] in ("claimed", "reclaimed")
            ]
        )
        assert claimed, "victim never claimed a cell"
        victim_key = claimed[0]["key"]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10.0)
        # Died mid-cell: the lease file survives its owner.
        lease = LeaseDir(paths["leases"], "observer", ttl_s=TTL_S)
        state = lease.read(victim_key)
        assert state is not None and state.worker == "victim"
        assert victim_key not in ResultStore(paths["results"]).completed_keys()

        survivors = [
            _start_worker(store_dir, "survivor-a"),
            _start_worker(store_dir, "survivor-b"),
        ]
        for process in survivors:
            process.join(timeout=120.0)
            assert process.exitcode == 0

        # Every cell completed; the victim's cell was reclaimed by a survivor.
        store = ResultStore(paths["results"])
        expected = {job.key for job in CHAOS_SPEC.expand()}
        assert store.completed_keys() == expected
        events = read_events(paths["events"])
        reclaims = [
            entry
            for entry in events
            if entry["event"] == "reclaimed" and entry["key"] == victim_key
        ]
        assert reclaims, "expired lease was never reclaimed"
        assert all(entry["worker"].startswith("survivor") for entry in reclaims)

        # Exactly once per cell among live owners: the victim completed
        # nothing (killed mid-cell) and no survivor double-computed.
        completions = {}
        for entry in events:
            if entry["event"] == "completed":
                completions[entry["key"]] = completions.get(entry["key"], 0) + 1
        assert completions == {key: 1 for key in expected}

        # The differential gate: deterministic metrics are cell-for-cell
        # identical to the single-worker oneshot run, both directions.
        diff = ResultStore(oneshot_store).diff(store)
        assert diff.is_clean, f"pool store drifted from oneshot: {diff.summary()}"
        reverse = store.diff(ResultStore(oneshot_store))
        assert reverse.is_clean

        # No stale leases left behind after an orderly finish.
        assert lease.scan() == []

        # Attribution: the victim lost its lease to a survivor.
        status = pool_status(store_dir, ttl_s=TTL_S)
        assert status["workers"]["victim"]["expired"] == 1
        assert status["workers"]["victim"]["completed"] == 0
        total_completed = sum(row["completed"] for row in status["workers"].values())
        assert total_completed == len(expected)

    def test_late_joining_worker_picks_up_remaining_cells(
        self, tmp_path, oneshot_store
    ):
        """A worker that exits after one cell leaves work a late joiner finishes."""
        store_dir = tmp_path / "pool"
        first = run_distributed(
            CHAOS_SPEC, store_dir, worker_id="early", ttl_s=TTL_S, max_cells=1
        )
        assert first.completed == 1
        assert not first.grid_complete
        late = run_distributed(CHAOS_SPEC, store_dir, worker_id="late", ttl_s=TTL_S)
        assert late.grid_complete
        assert late.completed == len(CHAOS_SPEC.expand()) - 1
        assert late.skipped == 1
        diff = ResultStore(oneshot_store).diff(
            ResultStore(store_paths(store_dir)["results"])
        )
        assert diff.is_clean
        status = pool_status(store_dir, ttl_s=TTL_S)
        assert status["workers"]["early"]["completed"] == 1
        assert status["workers"]["late"]["completed"] == len(CHAOS_SPEC.expand()) - 1


# --------------------------------------------------------------------------
# Claim-race and lease-file mechanics
# --------------------------------------------------------------------------
class TestClaimRace:
    def test_exactly_one_racer_wins_each_claim(self, tmp_path):
        """Two workers racing the same key: the O_EXCL create has one winner."""
        rounds = 25
        for round_index in range(rounds):
            key = f"cell{round_index:04d}"
            a = LeaseDir(tmp_path / "leases", "racer-a", ttl_s=60.0)
            b = LeaseDir(tmp_path / "leases", "racer-b", ttl_s=60.0)
            barrier = threading.Barrier(2)
            outcomes = {}

            def race(name, leases):
                barrier.wait()
                outcomes[name] = leases.try_claim(key)

            threads = [
                threading.Thread(target=race, args=("a", a)),
                threading.Thread(target=race, args=("b", b)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wins = [name for name, outcome in outcomes.items() if outcome == "claimed"]
            assert len(wins) == 1, f"round {round_index}: winners {outcomes}"

    def test_torn_and_empty_lease_files_are_expired_immediately(self, tmp_path):
        """A claim record torn by a killed creator never wedges the cell.

        Pinned behaviour: empty or unparsable lease bodies are treated as
        expired regardless of how fresh their mtime is.
        """
        leases = LeaseDir(tmp_path / "leases", "claimer", ttl_s=3600.0)
        (tmp_path / "leases").mkdir(parents=True, exist_ok=True)
        (tmp_path / "leases" / "torn.lease").write_bytes(b'{"worker": "dead')
        (tmp_path / "leases" / "empty.lease").write_bytes(b"")
        for key in ("torn", "empty"):
            state = leases.read(key)
            assert state is not None and state.torn
            assert leases.is_expired(state)
            assert leases.try_claim(key) == "reclaimed"
        # Sanity: a healthy fresh lease is NOT expired or claimable.
        other = LeaseDir(tmp_path / "leases", "owner", ttl_s=3600.0)
        assert other.try_claim("healthy") == "claimed"
        assert leases.try_claim("healthy") is None

    def test_release_then_reclaim_cycle(self, tmp_path):
        leases = LeaseDir(tmp_path / "leases", "w", ttl_s=60.0)
        assert leases.try_claim("k") == "claimed"
        assert leases.held_keys == ["k"]
        leases.release("k")
        assert leases.held_keys == []
        assert leases.try_claim("k") == "claimed"

    def test_renew_reports_leases_lost_to_reclaimers(self, tmp_path):
        now = {"t": 1000.0}
        stalled = LeaseDir(
            tmp_path / "leases", "stalled", ttl_s=1.0, clock=lambda: now["t"]
        )
        assert stalled.try_claim("k") == "claimed"
        now["t"] += 10.0  # the owner stalls past its TTL
        thief = LeaseDir(
            tmp_path / "leases", "thief", ttl_s=1.0, clock=lambda: now["t"]
        )
        assert thief.try_claim("k") == "reclaimed"
        assert stalled.renew() == ["k"]
        assert stalled.held_keys == []


# --------------------------------------------------------------------------
# Same-host pool helper (the orchestrate `distributed:` path)
# --------------------------------------------------------------------------
class TestPoolHelper:
    def test_pool_completes_grid_and_matches_oneshot(self, tmp_path, oneshot_store):
        summary = run_distributed_pool(
            CHAOS_SPEC, tmp_path / "pool", workers=2, ttl_s=TTL_S, poll_s=0.05
        )
        assert summary["cells"] == len(CHAOS_SPEC.expand())
        assert summary["exit_codes"] == [0, 0]
        diff = ResultStore(oneshot_store).diff(ResultStore(summary["results"]))
        assert diff.is_clean


# --------------------------------------------------------------------------
# CLI wiring: --distributed / --store-dir / status attribution / diff
# --------------------------------------------------------------------------
class TestDistributedCli:
    def _spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(CHAOS_SPEC.to_dict()))
        return str(path)

    def test_distributed_run_status_and_diff(self, tmp_path, oneshot_store, capsys):
        spec_file = self._spec_file(tmp_path)
        store_dir = str(tmp_path / "pool")
        run_args = ["sweep", "run", "--distributed", "--spec", spec_file]
        run_args += ["--store-dir", store_dir, "--worker-id", "cli-w0"]
        run_args += ["--lease-ttl", str(TTL_S)]
        assert main(run_args) == 0
        out = capsys.readouterr().out
        assert "grid complete" in out

        assert (
            main(["sweep", "status", "--spec", spec_file, "--store-dir", store_dir])
            == 0
        )
        out = capsys.readouterr().out
        assert "per-worker attribution" in out
        assert "cli-w0" in out

        results = str(Path(store_dir) / "results.jsonl")
        assert main(["sweep", "diff", str(oneshot_store), results]) == 0
        capsys.readouterr()
        # ... and the gate still bites on real (deterministic) drift.
        tampered = ResultStore(tmp_path / "tampered.jsonl")
        for record in ResultStore(results).records():
            metrics = dict(record.metrics)
            metrics["test_accuracy"] = 0.123
            tampered.append(record.config, metrics, key=record.key)
        assert main(["sweep", "diff", str(oneshot_store), str(tampered.path)]) == 1
        capsys.readouterr()

    def test_orchestrate_distributed_sweep_step_and_qa_report(self, tmp_path):
        """`distributed:` sweep steps run as a pool; the QA report renders
        the serving-load capacity table from the step's shared store."""
        yaml = pytest.importorskip("yaml")
        del yaml
        from repro.orchestrate import WorkflowSpec, run_workflow
        from repro.orchestrate.report import build_report

        spec = WorkflowSpec.from_dict(
            {
                "name": "pool-wf",
                "seed": 7,
                "steps": [
                    {
                        "name": "serve-grid",
                        "kind": "sweep",
                        "config": {
                            "distributed": {"workers": 2, "ttl_s": 10.0},
                            "spec": {
                                "kind": "serving-load",
                                "models": ["memhd"],
                                "datasets": ["mnist"],
                                "dimensions": [32],
                                "columns": [16],
                                "engines": ["packed"],
                                "scale": 0.01,
                                "epochs": 1,
                                "seed": 7,
                                "serving_concurrency": [2],
                                "serving_workers": [1],
                                "serving_batch": [4],
                                "serving_requests": 16,
                            },
                        },
                    }
                ],
            }
        )
        step = spec.steps[0]
        assert step.config["distributed"] == {
            "workers": 2,
            "ttl_s": 10.0,
            "poll_s": None,
        }
        workdir = tmp_path / "wf"
        result = run_workflow(spec, workdir)
        assert result.ok
        pools = list((workdir / "sweeps").glob("*.pool"))
        assert len(pools) == 1
        assert (pools[0] / "results.jsonl").is_file()
        assert (pools[0] / "events.jsonl").is_file()
        report = build_report(spec, workdir)
        assert "serving-load results" in report
        assert "p99_ms" in report and "qps" in report

    def test_orchestrate_rejects_malformed_distributed_block(self):
        pytest.importorskip("yaml")
        from repro.orchestrate import OrchestrationError, WorkflowSpec

        def payload(block):
            return {
                "name": "bad",
                "steps": [
                    {
                        "name": "grid",
                        "kind": "sweep",
                        "config": {
                            "distributed": block,
                            "spec": {"models": ["memhd"], "dimensions": [32]},
                        },
                    }
                ],
            }

        for block in ({"workers": 0}, {"ttl_s": -1}, {"unknown": 1}, "yes"):
            with pytest.raises(OrchestrationError):
                WorkflowSpec.from_dict(payload(block))

    def test_distributed_flag_validation(self, tmp_path, capsys):
        spec_file = self._spec_file(tmp_path)
        base = ["sweep", "run", "--distributed", "--spec", spec_file]
        assert main(base) == 2  # --distributed requires --store-dir
        args = base + ["--store-dir", str(tmp_path / "p"), "--workers", "4"]
        assert main(args) == 2  # --workers is oneshot-pool only
        args = base + ["--store-dir", str(tmp_path / "p"), "--no-resume"]
        assert main(args) == 2  # distributed runs always resume
        args = ["sweep", "run", "--spec", spec_file, "--store-dir", str(tmp_path)]
        assert main(args) == 2  # --store-dir requires --distributed
        capsys.readouterr()
