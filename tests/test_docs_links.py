"""Documentation link checks.

Every intra-repo markdown link must point at a file that exists, and
every `#anchor` (same-page or cross-page) must match a real heading.
External (`http://`, `https://`, `mailto:`) links are out of scope --
CI must not flake on the network -- but a dead relative link is a docs
regression this suite turns into a test failure.

Also pins the PR 6 docs contract: `docs/operations.md` exists and is
cross-linked from both the README and `docs/architecture.md`.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documentation surface under link-checking.  PAPER.md / ISSUE.md /
#: SNIPPETS.md are driver-managed scratch files, not documentation.
DOC_FILES = sorted(
    [
        REPO_ROOT / "README.md",
        REPO_ROOT / "ROADMAP.md",
        *(REPO_ROOT / "docs").glob("*.md"),
    ]
)

_INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)
_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)


def _strip_code_fences(text: str) -> str:
    """Fenced code blocks may contain markdown-looking noise; skip them."""
    return _FENCE.sub("", text)


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dashes for spaces."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # link text only
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(path: Path) -> set:
    slugs = set()
    seen = {}
    for match in _HEADING.finditer(_strip_code_fences(path.read_text("utf-8"))):
        slug = _github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def _links(path: Path):
    for match in _INLINE_LINK.finditer(_strip_code_fences(path.read_text("utf-8"))):
        yield match.group(1)


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "ftp://"))


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_intra_repo_links_resolve(doc):
    broken = []
    for target in _links(doc):
        if _is_external(target):
            continue
        path_part, _, anchor = target.partition("#")
        destination = doc if not path_part else (doc.parent / path_part).resolve()
        if not destination.exists():
            broken.append(f"{target} -> missing file {destination}")
            continue
        if anchor and destination.suffix == ".md":
            if anchor not in _anchors(destination):
                broken.append(f"{target} -> no heading for #{anchor}")
    assert not broken, f"dead links in {doc.name}:\n  " + "\n  ".join(broken)


def test_docs_are_discovered():
    """The checker must actually be looking at the docs surface."""
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "ROADMAP.md", "architecture.md", "operations.md"} <= names


def test_operations_guide_is_cross_linked():
    """PR 6 contract: the operator guide exists and is reachable."""
    operations = REPO_ROOT / "docs" / "operations.md"
    assert operations.is_file()
    readme = (REPO_ROOT / "README.md").read_text("utf-8")
    architecture = (REPO_ROOT / "docs" / "architecture.md").read_text("utf-8")
    assert "docs/operations.md" in readme
    assert "operations.md" in architecture
    # And the guide links back to the design doc.
    assert "architecture.md" in operations.read_text("utf-8")
