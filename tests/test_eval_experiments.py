"""Unit tests for repro.eval.experiments."""

import numpy as np
import pytest

from repro.baselines import BasicHDC, BasicHDCConfig
from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.eval.experiments import (
    accuracy_memory_curve,
    cluster_ratio_sweep,
    evaluate_classifier,
    grid_sweep,
    initialization_comparison,
)


def memhd_factory(dimension, columns, epochs=3):
    def factory(num_features, num_classes, seed):
        return MEMHDModel(
            num_features,
            num_classes,
            MEMHDConfig(dimension=dimension, columns=columns, epochs=epochs, seed=seed),
            rng=seed,
        )

    return factory


def basic_factory(dimension, epochs=2):
    def factory(num_features, num_classes, seed):
        return BasicHDC(
            num_features,
            num_classes,
            BasicHDCConfig(dimension=dimension, refine_epochs=epochs, seed=seed),
        )

    return factory


class TestEvaluateClassifier:
    def test_record_fields(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=48, columns=16, epochs=3, seed=0),
            rng=0,
        )
        record = evaluate_classifier(model, tiny_dataset, label="MEMHD 48x16")
        assert record.model == "MEMHD"
        assert record.label == "MEMHD 48x16"
        assert record.dataset == tiny_dataset.name
        assert 0.0 <= record.test_accuracy <= 1.0
        assert record.memory_kib > 0
        assert record.am_memory_kib > 0
        assert record.history is not None

    def test_record_as_dict(self, tiny_dataset):
        model = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=64, seed=1),
        )
        record = evaluate_classifier(model, tiny_dataset, record_history=False)
        data = record.as_dict()
        assert data["model"] == "BasicHDC"
        assert record.history is None

    def test_memory_matches_model_report(self, tiny_dataset):
        model = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=64, seed=1),
        )
        record = evaluate_classifier(model, tiny_dataset)
        assert record.memory_kib == pytest.approx(model.memory_report().total_kib)


class TestAccuracyMemoryCurve:
    def test_one_record_per_factory(self, tiny_dataset):
        factories = [
            ("MEMHD 48x16", memhd_factory(48, 16)),
            ("BasicHDC 64D", basic_factory(64)),
        ]
        records = accuracy_memory_curve(tiny_dataset, factories, trials=1, rng=0)
        assert [record.label for record in records] == ["MEMHD 48x16", "BasicHDC 64D"]

    def test_trials_are_averaged(self, tiny_dataset):
        records = accuracy_memory_curve(
            tiny_dataset, [("MEMHD", memhd_factory(48, 16))], trials=2, rng=1
        )
        assert records[0].extras["trials"] == 2
        assert "test_accuracy_std" in records[0].extras

    def test_invalid_trials(self, tiny_dataset):
        with pytest.raises(ValueError):
            accuracy_memory_curve(tiny_dataset, [], trials=0)

    def test_memory_ordering_matches_model_sizes(self, tiny_dataset):
        records = accuracy_memory_curve(
            tiny_dataset,
            [
                ("small", memhd_factory(32, 16)),
                ("large", memhd_factory(96, 32)),
            ],
            rng=2,
        )
        assert records[0].memory_kib < records[1].memory_kib


class TestGridSweep:
    def test_grid_keys_and_values(self, tiny_dataset):
        grid = grid_sweep(
            tiny_dataset,
            dimensions=(32, 64),
            columns=(8, 16),
            base_config=MEMHDConfig(dimension=32, columns=8, epochs=2, seed=0),
            rng=0,
        )
        assert set(grid.keys()) == {(32, 8), (32, 16), (64, 8), (64, 16)}
        assert all(0.0 <= value <= 1.0 for value in grid.values())

    def test_columns_below_class_count_skipped(self, tiny_dataset):
        grid = grid_sweep(
            tiny_dataset,
            dimensions=(32,),
            columns=(2, 8),
            base_config=MEMHDConfig(dimension=32, columns=8, epochs=1, seed=0),
            rng=1,
        )
        assert (32, 2) not in grid
        assert (32, 8) in grid


class TestInitializationComparison:
    def test_both_methods_present(self, tiny_dataset):
        histories = initialization_comparison(
            tiny_dataset,
            MEMHDConfig(dimension=48, columns=16, epochs=3, seed=0),
            rng=3,
        )
        assert set(histories) == {"clustering", "random"}
        for history in histories.values():
            assert history.initial_accuracy is not None
            assert history.epochs >= 1
            assert len(history.validation_accuracy) == history.epochs


class TestClusterRatioSweep:
    def test_sweep_keys(self, tiny_dataset):
        results = cluster_ratio_sweep(
            tiny_dataset,
            MEMHDConfig(dimension=48, columns=16, epochs=2, seed=0),
            ratios=(0.5, 1.0),
            rng=4,
        )
        assert set(results) == {0.5, 1.0}
        assert all(0.0 <= value <= 1.0 for value in results.values())
