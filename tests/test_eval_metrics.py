"""Unit tests for repro.eval.metrics."""

import numpy as np
import pytest

from repro.eval.metrics import (
    accuracy,
    confusion_matrix,
    misclassification_counts,
    misclassification_rates,
    per_class_accuracy,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_none_correct(self):
        assert accuracy(np.array([1, 2, 0]), np.array([0, 1, 2])) == 0.0

    def test_partial(self):
        assert accuracy(np.array([0, 1, 0, 1]), np.array([0, 1, 1, 0])) == 0.5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_layout_true_rows_pred_columns(self):
        actual = np.array([0, 0, 1, 1])
        predicted = np.array([0, 1, 1, 1])
        matrix = confusion_matrix(predicted, actual)
        assert matrix.shape == (2, 2)
        assert matrix[0, 0] == 1
        assert matrix[0, 1] == 1
        assert matrix[1, 1] == 2
        assert matrix[1, 0] == 0

    def test_total_equals_sample_count(self):
        gen = np.random.default_rng(0)
        actual = gen.integers(0, 5, 100)
        predicted = gen.integers(0, 5, 100)
        assert confusion_matrix(predicted, actual).sum() == 100

    def test_explicit_num_classes_pads(self):
        matrix = confusion_matrix(np.array([0]), np.array([0]), num_classes=4)
        assert matrix.shape == (4, 4)

    def test_diagonal_counts_correct_predictions(self):
        actual = np.array([0, 1, 2, 2])
        predicted = np.array([0, 1, 2, 0])
        matrix = confusion_matrix(predicted, actual)
        assert np.trace(matrix) == 3

    def test_negative_labels_raise(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([-1]), np.array([0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([]), np.array([]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0]))


class TestPerClassAccuracy:
    def test_values(self):
        actual = np.array([0, 0, 1, 1, 1])
        predicted = np.array([0, 1, 1, 1, 0])
        result = per_class_accuracy(predicted, actual)
        assert result[0] == pytest.approx(0.5)
        assert result[1] == pytest.approx(2 / 3)

    def test_absent_class_is_nan(self):
        result = per_class_accuracy(np.array([0]), np.array([0]), num_classes=3)
        assert np.isnan(result[1])
        assert np.isnan(result[2])


class TestMisclassification:
    def test_counts(self):
        actual = np.array([0, 0, 0, 1, 1, 2])
        predicted = np.array([0, 1, 2, 1, 1, 2])
        counts = misclassification_counts(predicted, actual)
        assert np.array_equal(counts, [2, 0, 0])

    def test_counts_with_explicit_classes(self):
        counts = misclassification_counts(
            np.array([1]), np.array([0]), num_classes=4
        )
        assert np.array_equal(counts, [1, 0, 0, 0])

    def test_rates(self):
        actual = np.array([0, 0, 1, 1])
        predicted = np.array([1, 1, 1, 1])
        rates = misclassification_rates(predicted, actual)
        assert rates[0] == pytest.approx(1.0)
        assert rates[1] == pytest.approx(0.0)

    def test_rates_nan_for_absent_class(self):
        rates = misclassification_rates(np.array([0]), np.array([0]), num_classes=2)
        assert np.isnan(rates[1])

    def test_counts_plus_diagonal_equals_class_totals(self):
        gen = np.random.default_rng(1)
        actual = gen.integers(0, 4, 60)
        predicted = gen.integers(0, 4, 60)
        matrix = confusion_matrix(predicted, actual)
        counts = misclassification_counts(predicted, actual)
        assert np.array_equal(counts + np.diag(matrix), np.bincount(actual, minlength=4))
