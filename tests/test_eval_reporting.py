"""Unit tests for repro.eval.reporting."""

import numpy as np
import pytest

from repro.eval.reporting import (
    format_accuracy_memory,
    format_heatmap,
    format_store_diff,
    format_sweep_records,
    format_table,
    normalize_series,
    sweep_grid,
)


class TestFormatTable:
    def test_contains_headers_and_values(self):
        rows = [{"model": "MEMHD", "accuracy": 0.95}, {"model": "BasicHDC", "accuracy": 0.9}]
        text = format_table(rows)
        assert "model" in text
        assert "MEMHD" in text
        assert "0.95" in text

    def test_empty_rows(self):
        assert format_table([]) == "(empty table)"

    def test_title_included(self):
        text = format_table([{"a": 1}], title="Table II")
        assert text.splitlines()[0] == "Table II"

    def test_explicit_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_keys_render_empty(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "1" in text and "2" in text

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456}], float_format="{:.2f}")
        assert "0.12" in text

    def test_alignment_consistent(self):
        rows = [{"name": "a", "value": 1}, {"name": "longer-name", "value": 22}]
        lines = format_table(rows).splitlines()
        assert len({len(line) for line in lines[0:1] + lines[2:]}) == 1


class TestNormalizeSeries:
    def test_max_becomes_peak(self):
        assert normalize_series([1.0, 2.0, 4.0]) == [25.0, 50.0, 100.0]

    def test_custom_peak(self):
        assert normalize_series([2.0, 1.0], peak=1.0) == [1.0, 0.5]

    def test_empty(self):
        assert normalize_series([]) == []

    def test_non_positive_max_raises(self):
        with pytest.raises(ValueError):
            normalize_series([0.0, 0.0])


class TestFormatAccuracyMemory:
    def test_sorted_by_memory(self):
        records = [
            {"model": "big", "label": "big", "memory_kib": 100.0, "test_accuracy": 0.9},
            {"model": "small", "label": "small", "memory_kib": 1.0, "test_accuracy": 0.8},
        ]
        text = format_accuracy_memory(records)
        assert text.index("small") < text.index("big")

    def test_accepts_record_objects(self, tiny_dataset):
        from repro.baselines import BasicHDC, BasicHDCConfig
        from repro.eval.experiments import evaluate_classifier

        model = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=32, seed=0),
        )
        record = evaluate_classifier(model, tiny_dataset, record_history=False)
        text = format_accuracy_memory([record], title="Fig. 3")
        assert "Fig. 3" in text
        assert "BasicHDC" in text


class TestFormatHeatmap:
    def test_grid_rendering(self):
        grid = {(64, 64): 0.5, (64, 128): 0.6, (128, 64): 0.7, (128, 128): 0.8}
        text = format_heatmap(grid, title="Fig. 4")
        assert "Fig. 4" in text
        assert "64" in text and "128" in text
        assert "80.0" in text  # 0.8 rendered as a percentage

    def test_missing_cells_rendered_as_dashes(self):
        grid = {(64, 64): 0.5, (128, 128): 0.9}
        text = format_heatmap(grid)
        assert "--" in text

    def test_empty_grid(self):
        assert format_heatmap({}) == "(empty heatmap)"

    def test_cell_scale_for_non_fraction_metrics(self):
        grid = {(64, 64): 3.125, (128, 64): 6.25}
        text = format_heatmap(grid, cell_format="{:8.4g}", cell_scale=1.0)
        assert "3.125" in text
        assert "312.5" not in text


class TestSweepRenderers:
    IDEAL = {
        "config": {
            "model": "memhd",
            "dataset": "mnist",
            "dimension": 64,
            "columns": 16,
            "engine": "float",
            "bit_flip_probability": 0.0,
            "adc_bits": None,
        },
        "metrics": {"test_accuracy": 0.8, "memory_kib": 6.25},
    }
    NOISY = {
        "config": {
            "model": "memhd",
            "dataset": "mnist",
            "dimension": 64,
            "columns": 16,
            "engine": None,
            "bit_flip_probability": 0.05,
            "adc_bits": None,
        },
        "metrics": {"test_accuracy": 0.3, "memory_kib": 6.25},
    }

    def test_format_sweep_records_lists_cells(self):
        text = format_sweep_records([self.IDEAL, self.NOISY], title="Sweep")
        assert "Sweep" in text
        assert "memhd" in text
        assert "80.00" in text  # accuracy rendered as a percentage
        assert "flip_p" in text  # the noise axis appears for noisy cells

    def test_sweep_grid_skips_non_ideal_cells_by_default(self):
        """Noisy cells share the (D, C) key; they must not clobber ideal ones."""
        grid = sweep_grid([self.IDEAL, self.NOISY])
        assert grid == {(64, 16): pytest.approx(0.8)}
        # Opting out pivots whatever the caller pre-filtered.
        noisy_only = sweep_grid([self.NOISY], ideal_only=False)
        assert noisy_only == {(64, 16): pytest.approx(0.3)}

    def test_format_store_diff_renders_changes(self, tmp_path):
        from repro.eval.store import ResultStore

        left = ResultStore(tmp_path / "a.jsonl")
        right = ResultStore(tmp_path / "b.jsonl")
        left.append({"model": "memhd"}, {"test_accuracy": 0.8})
        right.append({"model": "memhd"}, {"test_accuracy": 0.6})
        text = format_store_diff(left.diff(right), title="golden vs fresh")
        assert "golden vs fresh" in text
        assert "test_accuracy" in text
        assert "0.8" in text and "0.6" in text
        clean = format_store_diff(left.diff(left))
        assert "identical" in clean
