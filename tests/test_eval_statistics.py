"""Unit tests for repro.eval.statistics."""

import numpy as np
import pytest

from repro.eval.statistics import (
    paired_bootstrap,
    run_trials,
    summarize_trials,
)


class TestSummarizeTrials:
    def test_single_value(self):
        summary = summarize_trials([0.8])
        assert summary.mean == pytest.approx(0.8)
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == pytest.approx(0.8)
        assert summary.count == 1

    def test_mean_and_std(self):
        summary = summarize_trials([0.7, 0.8, 0.9])
        assert summary.mean == pytest.approx(0.8)
        assert summary.std == pytest.approx(0.1)
        assert summary.count == 3

    def test_interval_contains_mean(self):
        summary = summarize_trials([0.5, 0.6, 0.7, 0.8])
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_interval_width_shrinks_with_more_trials(self):
        rng = np.random.default_rng(0)
        few = summarize_trials(rng.normal(0.8, 0.05, 5))
        many = summarize_trials(rng.normal(0.8, 0.05, 50))
        assert (many.ci_high - many.ci_low) < (few.ci_high - few.ci_low)

    def test_higher_confidence_widens_interval(self):
        values = [0.6, 0.7, 0.8, 0.9]
        narrow = summarize_trials(values, confidence=0.8)
        wide = summarize_trials(values, confidence=0.99)
        assert (wide.ci_high - wide.ci_low) > (narrow.ci_high - narrow.ci_low)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            summarize_trials([])
        with pytest.raises(ValueError):
            summarize_trials([0.5], confidence=1.5)

    def test_as_dict(self):
        data = summarize_trials([0.5, 0.7]).as_dict()
        assert set(data) == {"mean", "std", "count", "ci_low", "ci_high", "confidence"}


class TestPairedBootstrap:
    def test_clear_winner(self):
        a = [0.90, 0.91, 0.92, 0.93, 0.90]
        b = [0.80, 0.82, 0.81, 0.83, 0.80]
        result = paired_bootstrap(a, b, rng=0)
        assert result["mean_difference"] == pytest.approx(0.10, abs=0.01)
        assert result["p_not_better"] < 0.05
        assert result["ci_low"] > 0

    def test_symmetric_when_swapped(self):
        a = [0.9, 0.8, 0.85]
        b = [0.7, 0.75, 0.72]
        forward = paired_bootstrap(a, b, rng=1)
        backward = paired_bootstrap(b, a, rng=1)
        assert forward["mean_difference"] == pytest.approx(-backward["mean_difference"])

    def test_no_difference(self):
        values = [0.8, 0.82, 0.78, 0.81]
        result = paired_bootstrap(values, values, rng=2)
        assert result["mean_difference"] == pytest.approx(0.0)
        assert result["p_not_better"] == pytest.approx(1.0)

    def test_single_pair(self):
        result = paired_bootstrap([0.9], [0.8], rng=3)
        assert result["mean_difference"] == pytest.approx(0.1)
        assert result["p_not_better"] == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            paired_bootstrap([0.1, 0.2], [0.1])
        with pytest.raises(ValueError):
            paired_bootstrap([], [])
        with pytest.raises(ValueError):
            paired_bootstrap([0.1], [0.2], num_resamples=0)

    def test_deterministic_given_seed(self):
        a = [0.9, 0.85, 0.88, 0.92]
        b = [0.86, 0.84, 0.9, 0.87]
        assert paired_bootstrap(a, b, rng=7) == paired_bootstrap(a, b, rng=7)


class TestRunTrials:
    def test_runs_requested_number_of_trials(self):
        calls = []

        def experiment(seed):
            calls.append(seed)
            return 0.5

        summary = run_trials(experiment, num_trials=4, rng=0)
        assert len(calls) == 4
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.5)

    def test_distinct_seeds_per_trial(self):
        seeds = []
        run_trials(lambda seed: seeds.append(seed) or 0.0, num_trials=5, rng=1)
        assert len(set(seeds)) == 5

    def test_deterministic_given_rng(self):
        def experiment(seed):
            return (seed % 100) / 100.0

        a = run_trials(experiment, num_trials=3, rng=9)
        b = run_trials(experiment, num_trials=3, rng=9)
        assert a.mean == b.mean

    def test_invalid_trial_count(self):
        with pytest.raises(ValueError):
            run_trials(lambda seed: 0.0, num_trials=0)

    def test_real_model_trials(self, tiny_dataset):
        """End-to-end: multi-trial MEMHD accuracy with a confidence interval."""
        from repro.core.config import MEMHDConfig
        from repro.core.model import MEMHDModel

        def experiment(seed):
            model = MEMHDModel(
                tiny_dataset.num_features,
                tiny_dataset.num_classes,
                MEMHDConfig(dimension=48, columns=16, epochs=3, seed=seed),
                rng=seed,
            )
            model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
            return model.score(tiny_dataset.test_features, tiny_dataset.test_labels)

        summary = run_trials(experiment, num_trials=3, rng=5)
        assert summary.count == 3
        assert 0.0 <= summary.ci_low <= summary.mean <= summary.ci_high <= 1.0
        assert summary.mean > 1.5 / tiny_dataset.num_classes
