"""Tests for the append-only JSONL result store (repro.eval.store)."""

import json

import pytest

from repro.eval.store import (
    ResultRecord,
    ResultStore,
    StoreError,
    canonical_config,
    config_key,
)


class TestConfigKey:
    def test_key_is_order_insensitive(self):
        a = {"model": "memhd", "dimension": 64, "engine": "float"}
        b = {"engine": "float", "model": "memhd", "dimension": 64}
        assert config_key(a) == config_key(b)

    def test_key_changes_with_any_field(self):
        base = {"model": "memhd", "dimension": 64}
        assert config_key(base) != config_key({**base, "dimension": 65})
        assert config_key(base) != config_key({**base, "extra": None})

    def test_key_is_stable_across_processes(self):
        # Pinned literal: the hash must never depend on interpreter state
        # (PYTHONHASHSEED, dict order, platform), or resume would break.
        assert config_key({"model": "memhd", "dimension": 64}) == config_key(
            json.loads(canonical_config({"dimension": 64, "model": "memhd"}))
        )

    def test_unserializable_config_rejected(self):
        with pytest.raises(StoreError):
            config_key({"bad": object()})


class TestResultStore:
    def test_missing_file_reads_empty(self, tmp_path):
        store = ResultStore(tmp_path / "none.jsonl")
        assert store.records() == []
        assert store.completed_keys() == set()
        assert len(store) == 0

    def test_append_and_reload(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        record = store.append({"model": "memhd"}, {"test_accuracy": 0.5})
        reloaded = ResultStore(store.path).records()
        assert reloaded == [record]
        assert reloaded[0].key == config_key({"model": "memhd"})

    def test_duplicate_keys_last_write_wins(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append({"model": "memhd"}, {"test_accuracy": 0.5})
        store.append({"model": "memhd"}, {"test_accuracy": 0.7})
        assert len(store.records()) == 2
        assert len(store) == 1
        assert store.latest()[config_key({"model": "memhd"})].metrics[
            "test_accuracy"
        ] == pytest.approx(0.7)

    def test_torn_final_line_is_recoverable(self, tmp_path):
        """A sweep killed mid-write leaves a partial last line; reads skip it."""
        store = ResultStore(tmp_path / "r.jsonl")
        kept = store.append({"model": "memhd"}, {"test_accuracy": 0.5})
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "abc", "config": {"model":')  # torn write
        assert store.records() == [kept]

    def test_append_after_torn_tail_does_not_fuse(self, tmp_path):
        """Resuming onto a torn tail must not weld the new record onto it.

        The partial line is truncated away on the next append; afterwards
        both the pre-kill and post-resume records read back cleanly (no
        fused unparseable line, no mid-file corruption on later reads).
        """
        store = ResultStore(tmp_path / "r.jsonl")
        first = store.append({"model": "memhd"}, {"test_accuracy": 0.5})
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "abc", "config": {"model":')  # killed writer
        second = store.append({"model": "basichdc"}, {"test_accuracy": 0.6})
        third = store.append({"model": "quanthd"}, {"test_accuracy": 0.7})
        assert store.records() == [first, second, third]
        assert len(store) == 3

    def test_append_onto_wholly_torn_file(self, tmp_path):
        """A store whose only content is a torn line heals to just the append."""
        path = tmp_path / "r.jsonl"
        path.write_text('{"key": "abc"')  # no newline, no complete record
        store = ResultStore(path)
        record = store.append({"model": "memhd"}, {"test_accuracy": 0.5})
        assert store.records() == [record]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.append({"model": "memhd"}, {"test_accuracy": 0.5})
        lines = path.read_text().splitlines()
        path.write_text("GARBAGE\n" + "\n".join(lines) + "\n")
        with pytest.raises(StoreError):
            store.records()

    def test_extend_round_trips_records(self, tmp_path):
        source = ResultStore(tmp_path / "a.jsonl")
        source.append({"model": "memhd"}, {"test_accuracy": 0.5})
        target = ResultStore(tmp_path / "b.jsonl")
        target.extend(source.records())
        assert target.latest() == source.latest()

    def test_record_requires_all_fields(self):
        with pytest.raises(StoreError):
            ResultRecord.from_dict({"key": "abc", "config": {}})


class TestStoreDiff:
    def _store(self, tmp_path, name, cells):
        store = ResultStore(tmp_path / f"{name}.jsonl")
        for config, metrics in cells:
            store.append(config, metrics)
        return store

    def test_identical_stores_are_clean(self, tmp_path):
        cells = [({"model": "memhd", "dimension": 64}, {"test_accuracy": 0.8})]
        left = self._store(tmp_path, "left", cells)
        right = self._store(tmp_path, "right", cells)
        diff = left.diff(right)
        assert diff.is_clean
        assert diff.matching == 1

    def test_metric_drift_detected(self, tmp_path):
        config = {"model": "memhd", "dimension": 64}
        left = self._store(tmp_path, "left", [(config, {"test_accuracy": 0.8})])
        right = self._store(tmp_path, "right", [(config, {"test_accuracy": 0.6})])
        diff = left.diff(right)
        assert not diff.is_clean
        assert len(diff.changed) == 1
        change = diff.changed[0]
        assert change.metric == "test_accuracy"
        assert change.old == pytest.approx(0.8)
        assert change.new == pytest.approx(0.6)

    def test_timing_metrics_ignored_by_default(self, tmp_path):
        config = {"model": "memhd"}
        left = self._store(
            tmp_path, "left", [(config, {"test_accuracy": 0.8, "elapsed_s": 1.0})]
        )
        right = self._store(
            tmp_path, "right", [(config, {"test_accuracy": 0.8, "elapsed_s": 9.0})]
        )
        assert left.diff(right).is_clean
        # ... unless the caller opts in to comparing them.
        assert not left.diff(right, ignore=()).is_clean

    def test_latency_metrics_ignored_by_default(self, tmp_path):
        """Serving measurements (QPS, latency quantiles) never gate drift."""
        config = {"model": "memhd", "kind": "serving-load"}
        left = self._store(
            tmp_path,
            "left",
            [(config, {"requests": 64, "qps": 1500.0, "p99_ms": 9.1})],
        )
        right = self._store(
            tmp_path,
            "right",
            [(config, {"requests": 64, "qps": 2.0, "p99_ms": 900.0})],
        )
        assert left.diff(right).is_clean
        assert right.diff(left).is_clean  # symmetric: both directions clean

    def test_volatile_skip_is_exact_name_matching_not_substring(self, tmp_path):
        """Pinned regression: metrics merely *containing* a volatile word
        (``firewall_rules`` contains ``wall``) must still be compared."""
        config = {"model": "memhd"}
        left = self._store(
            tmp_path, "left", [(config, {"firewall_rules": 3, "overall_score": 0.9})]
        )
        right = self._store(
            tmp_path, "right", [(config, {"firewall_rules": 4, "overall_score": 0.5})]
        )
        diff = left.diff(right)
        assert not diff.is_clean
        assert {change.metric for change in diff.changed} == {
            "firewall_rules",
            "overall_score",
        }
        reverse = right.diff(left)
        assert {change.metric for change in reverse.changed} == {
            "firewall_rules",
            "overall_score",
        }

    def test_deterministic_serving_counts_still_gate(self, tmp_path):
        """``requests``/``errors``/``error_rate`` are NOT volatile: a pool
        that dropped requests must show up as drift in both directions."""
        config = {"model": "memhd", "kind": "serving-load"}
        left = self._store(
            tmp_path, "left", [(config, {"requests": 64, "errors": 0, "error_rate": 0.0})]
        )
        right = self._store(
            tmp_path, "right", [(config, {"requests": 60, "errors": 4, "error_rate": 0.0625})]
        )
        for diff in (left.diff(right), right.diff(left)):
            assert not diff.is_clean
            assert {change.metric for change in diff.changed} == {
                "requests",
                "errors",
                "error_rate",
            }

    def test_tolerance_is_honored(self, tmp_path):
        config = {"model": "memhd"}
        left = self._store(tmp_path, "left", [(config, {"test_accuracy": 0.8})])
        right = self._store(
            tmp_path, "right", [(config, {"test_accuracy": 0.8 + 1e-12})]
        )
        assert left.diff(right).is_clean
        assert not left.diff(right, rtol=0.0, atol=0.0).is_clean

    def test_metric_allowlist(self, tmp_path):
        config = {"model": "memhd"}
        left = self._store(
            tmp_path, "left", [(config, {"test_accuracy": 0.8, "memory_kib": 3.0})]
        )
        right = self._store(
            tmp_path, "right", [(config, {"test_accuracy": 0.8, "memory_kib": 4.0})]
        )
        assert left.diff(right, metrics=("test_accuracy",)).is_clean
        assert not left.diff(right).is_clean

    def test_missing_cells_reported(self, tmp_path):
        only_left = {"model": "memhd", "dimension": 32}
        only_right = {"model": "memhd", "dimension": 64}
        left = self._store(tmp_path, "left", [(only_left, {"test_accuracy": 0.5})])
        right = self._store(tmp_path, "right", [(only_right, {"test_accuracy": 0.5})])
        diff = left.diff(right)
        assert not diff.is_clean
        assert diff.only_left == [config_key(only_left)]
        assert diff.only_right == [config_key(only_right)]

    def test_missing_metric_counts_as_change(self, tmp_path):
        config = {"model": "memhd"}
        left = self._store(tmp_path, "left", [(config, {"test_accuracy": 0.8})])
        right = self._store(
            tmp_path, "right", [(config, {"test_accuracy": 0.8, "extra": 1.0})]
        )
        diff = left.diff(right)
        assert [change.metric for change in diff.changed] == ["extra"]

    def test_diff_of_missing_stores_is_clean_no_records(self, tmp_path):
        """Stores that were never written diff as clean "no records".

        Pins the contract ``repro sweep diff`` (and the workflow report
        builder) rely on: no special-casing required by callers, no
        exception, an honest zero-count summary.
        """
        left = ResultStore(tmp_path / "never_a.jsonl")
        right = ResultStore(tmp_path / "never_b.jsonl")
        diff = left.diff(right)
        assert diff.is_clean
        assert diff.matching == 0
        assert diff.changed == []
        assert diff.only_left == [] and diff.only_right == []
        assert "0 matching" in diff.summary()

    def test_diff_of_empty_file_store_is_clean(self, tmp_path):
        """A store file that exists but holds no records behaves the same."""
        empty_path = tmp_path / "empty.jsonl"
        empty_path.write_text("", encoding="utf-8")
        diff = ResultStore(empty_path).diff(ResultStore(tmp_path / "ghost.jsonl"))
        assert diff.is_clean
        assert diff.matching == 0

    def test_diff_populated_vs_missing_reports_only_left(self, tmp_path):
        config = {"model": "memhd", "dimension": 32}
        left = self._store(tmp_path, "left", [(config, {"test_accuracy": 0.5})])
        diff = left.diff(ResultStore(tmp_path / "ghost.jsonl"))
        assert not diff.is_clean
        assert diff.only_left == [config_key(config)]
        assert diff.only_right == []
