"""Tests for the experiment-matrix engine (repro.eval.sweep).

Covers spec validation and canonicalized expansion, deterministic
per-cell seeding, parallel execution, the resume contract (a killed sweep
re-run completes only the missing cells), ``--save-best`` reconstruction,
and the golden-metrics regression gate pinned under ``tests/golden/``.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.eval.store import ResultStore, config_key
from repro.eval.sweep import (
    SweepError,
    SweepSpec,
    best_record,
    derive_job_seed,
    execute_job,
    run_sweep,
    spec_records,
    train_record_model,
)

#: The tiny grid used by most execution tests: fast, but still crossing
#: model families, engines and a non-ideal IMC cell.
TINY = SweepSpec(
    models=("memhd", "basichdc"),
    datasets=("mnist",),
    dimensions=(32,),
    columns=(16,),
    engines=("float", "packed"),
    bit_flip_probabilities=(0.0, 0.05),
    scale=0.01,
    epochs=1,
    seed=3,
)


class TestSweepSpec:
    def test_rejects_unknown_axes_values(self):
        with pytest.raises(SweepError):
            SweepSpec(models=("notamodel",))
        with pytest.raises(SweepError):
            SweepSpec(datasets=("cifar",))
        with pytest.raises(SweepError):
            SweepSpec(engines=("quantum",))
        with pytest.raises(SweepError):
            SweepSpec(bit_flip_probabilities=(1.5,))
        with pytest.raises(SweepError):
            SweepSpec(scale=0.0)

    def test_dict_round_trip(self):
        spec = SweepSpec.from_dict(TINY.to_dict())
        assert spec == TINY
        with pytest.raises(SweepError):
            SweepSpec.from_dict({"models": ["memhd"], "bogus_field": 1})

    def test_from_dict_wraps_type_errors(self):
        """Wrong-typed spec values surface as SweepError, not a traceback."""
        with pytest.raises(SweepError, match="invalid sweep spec"):
            SweepSpec.from_dict({"dimensions": 32})  # scalar, not a list
        with pytest.raises(SweepError, match="invalid sweep spec"):
            SweepSpec.from_dict({"epochs": "five"})
        with pytest.raises(SweepError, match="invalid sweep spec"):
            SweepSpec.from_dict({"dimensions": ["x"]})

    def test_expansion_is_canonical(self):
        """Axes a model ignores must not multiply its cells."""
        spec = SweepSpec(
            models=("basichdc",),
            columns=(16, 32, 64),  # no columns axis on baselines
            cluster_ratios=(0.5, 0.9),  # nor cluster ratios
            dimensions=(32,),
            scale=0.01,
            epochs=1,
        )
        jobs = spec.expand()
        assert len(jobs) == 1
        assert "columns" not in jobs[0].config
        assert "cluster_ratio" not in jobs[0].config

    def test_packed_cells_only_for_capable_models(self):
        spec = SweepSpec(
            models=("onlinehd", "searchd"),
            engines=("float", "packed"),
            dimensions=(32,),
            scale=0.01,
            epochs=1,
        )
        engines = {
            (job.config["model"], job.config["engine"]) for job in spec.expand()
        }
        assert engines == {
            ("onlinehd", "float"),
            ("searchd", "float"),
            ("searchd", "packed"),
        }

    def test_memhd_column_budget_below_class_count_dropped(self):
        spec = SweepSpec(
            models=("memhd",),
            datasets=("isolet",),  # 26 classes
            dimensions=(32,),
            columns=(16, 32),
            scale=0.01,
            epochs=1,
        )
        jobs = spec.expand()
        assert [job.config["columns"] for job in jobs] == [32]

    def test_non_ideal_cells_are_memhd_simulator_cells(self):
        jobs = TINY.expand()
        noisy = [job for job in jobs if job.config["bit_flip_probability"] > 0]
        assert noisy
        assert all(job.config["model"] == "memhd" for job in noisy)
        assert all(job.config["engine"] is None for job in noisy)

    def test_empty_grid_raises(self, tmp_path):
        spec = SweepSpec(
            models=("onlinehd",),
            engines=("packed",),  # unavailable on a floating-point AM
            dimensions=(32,),
            scale=0.01,
            epochs=1,
        )
        assert spec.expand() == []
        with pytest.raises(SweepError, match="empty grid"):
            run_sweep(spec, ResultStore(tmp_path / "r.jsonl"))

    def test_job_seeds_are_deterministic_and_engine_invariant(self):
        jobs = {job.key: job for job in TINY.expand()}
        again = {job.key: job for job in TINY.expand()}
        assert {k: j.seed for k, j in jobs.items()} == {
            k: j.seed for k, j in again.items()
        }
        # Cells that evaluate the same trained model (float vs packed vs
        # noisy-simulator) share one model seed...
        memhd_seeds = {
            job.seed for job in jobs.values() if job.config["model"] == "memhd"
        }
        assert len(memhd_seeds) == 1
        # ...while a different base seed moves every model seed.
        other = SweepSpec.from_dict({**TINY.to_dict(), "seed": 4}).expand()
        assert all(jobs[j.key].seed != j.seed for j in other if j.key in jobs)


class TestRunSweep:
    def test_run_executes_all_cells(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        result = run_sweep(TINY, store, workers=1)
        assert result.ok
        assert result.completed == result.total == len(TINY.expand())
        assert store.completed_keys() == {job.key for job in TINY.expand()}

    def test_float_and_packed_cells_agree(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        assert run_sweep(TINY, store, workers=1).ok
        by_engine = {}
        for record in spec_records(TINY, store):
            config = record.config
            by_engine.setdefault((config["model"], config["dimension"]), {})[
                config["engine"]
            ] = record.metrics
        for cell, engines in by_engine.items():
            if "float" in engines and "packed" in engines:
                assert engines["float"]["test_accuracy"] == pytest.approx(
                    engines["packed"]["test_accuracy"]
                ), cell

    def test_killed_sweep_resumes_only_missing_cells(self, tmp_path):
        """The acceptance-criteria resume check.

        The first run is cut short after three cells (the observable state
        of a killed process: a store with a prefix of the grid).  The
        re-run with the same spec must execute exactly the missing cells
        and leave the store complete.
        """
        store = ResultStore(tmp_path / "r.jsonl")
        total = len(TINY.expand())
        first = run_sweep(TINY, store, workers=1, max_jobs=3)
        assert first.completed == 3
        assert len(store) == 3

        second = run_sweep(TINY, store, workers=1)
        assert second.ok
        assert second.skipped == 3
        assert second.completed == total - 3
        assert len(store) == total

        # A third run has nothing left to do.
        third = run_sweep(TINY, store, workers=1)
        assert third.completed == 0
        assert third.skipped == total

    def test_resumed_cells_match_uninterrupted_run(self, tmp_path):
        """Resume must not change results: interrupted+resumed == one-shot."""
        interrupted = ResultStore(tmp_path / "interrupted.jsonl")
        run_sweep(TINY, interrupted, workers=1, max_jobs=3)
        run_sweep(TINY, interrupted, workers=1)
        oneshot = ResultStore(tmp_path / "oneshot.jsonl")
        run_sweep(TINY, oneshot, workers=1)
        assert interrupted.diff(oneshot).is_clean

    def test_no_resume_reexecutes_everything(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        run_sweep(TINY, store, workers=1)
        result = run_sweep(TINY, store, workers=1, resume=False)
        assert result.completed == result.total

    def test_parallel_run_matches_serial(self, tmp_path):
        serial = ResultStore(tmp_path / "serial.jsonl")
        parallel = ResultStore(tmp_path / "parallel.jsonl")
        run_sweep(TINY, serial, workers=1)
        result = run_sweep(TINY, parallel, workers=2)
        assert result.ok
        assert serial.diff(parallel).is_clean

    def test_failed_cells_are_reported_not_stored(self, tmp_path, monkeypatch):
        import repro.eval.sweep as sweep_module

        real = sweep_module.execute_job
        doomed = TINY.expand()[0].key

        def flaky(payload):
            if payload["key"] == doomed:
                raise RuntimeError("injected failure")
            return real(payload)

        monkeypatch.setattr(sweep_module, "execute_job", flaky)
        store = ResultStore(tmp_path / "r.jsonl")
        result = run_sweep(TINY, store, workers=1)
        assert not result.ok
        assert [failure["key"] for failure in result.failed] == [doomed]
        assert doomed not in store.completed_keys()
        # The failed cell is retried (and heals) on the next run.
        monkeypatch.setattr(sweep_module, "execute_job", real)
        heal = run_sweep(TINY, store, workers=1)
        assert heal.ok and heal.completed == 1

    def test_progress_callback_receives_lines(self, tmp_path):
        lines = []
        run_sweep(
            SweepSpec(models=("basichdc",), dimensions=(32,), scale=0.01, epochs=1),
            ResultStore(tmp_path / "r.jsonl"),
            progress=lines.append,
        )
        assert any("to run" in line for line in lines)
        assert any("done" in line for line in lines)


class TestRecordHelpers:
    def test_spec_records_orders_and_filters(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        run_sweep(TINY, store, workers=1)
        store.append({"model": "unrelated"}, {"test_accuracy": 9.9})
        records = spec_records(TINY, store)
        assert [record.key for record in records] == [
            job.key for job in TINY.expand()
        ]

    def test_best_record_and_reconstruction(self, tmp_path):
        """``--save-best``: the retrained best model reproduces its metrics."""
        store = ResultStore(tmp_path / "r.jsonl")
        run_sweep(TINY, store, workers=1)
        records = spec_records(TINY, store)
        best = best_record(records)
        assert all(
            best.metrics["test_accuracy"] >= record.metrics["test_accuracy"]
            for record in records
            if "test_accuracy" in record.metrics
        )
        model, dataset = train_record_model(best)
        accuracy = model.score(dataset.test_features, dataset.test_labels)
        assert accuracy == pytest.approx(best.metrics["test_accuracy"])

    def test_best_record_requires_metric(self):
        with pytest.raises(SweepError):
            best_record([], metric="test_accuracy")

    def test_execute_job_is_reproducible(self):
        job = TINY.expand()[0].as_dict()
        first = execute_job(job)
        second = execute_job(job)
        assert first["metrics"]["test_accuracy"] == pytest.approx(
            second["metrics"]["test_accuracy"]
        )
        assert first["metrics"]["memory_kib"] == pytest.approx(
            second["metrics"]["memory_kib"]
        )


# --------------------------------------------------------------------------
# Golden-metrics regression gate
# --------------------------------------------------------------------------
#: The pinned spec behind ``tests/golden/sweep_mnist_tiny.jsonl``.  Every
#: quantity feeding its metrics is deterministic (synthetic data from a
#: seeded generator, derived per-cell model seeds, discrete accuracy
#: ratios), so the stored values are exact across platforms; timing
#: metrics are excluded from the diff by default.
GOLDEN_SPEC = SweepSpec(
    models=("memhd", "basichdc"),
    datasets=("mnist",),
    dimensions=(32, 64),
    columns=(16,),
    engines=("float",),
    scale=0.01,
    epochs=1,
    seed=20250726,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "sweep_mnist_tiny.jsonl"


class TestGoldenMetrics:
    def test_sweep_matches_golden_store(self, tmp_path):
        """Accuracy drift against the pinned store fails loudly.

        Regenerate the pin (after an intentional behaviour change) with::

            REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_eval_sweep.py -k golden
        """
        fresh = ResultStore(tmp_path / "fresh.jsonl")
        result = run_sweep(GOLDEN_SPEC, fresh, workers=1)
        assert result.ok
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_PATH.unlink(missing_ok=True)
            ResultStore(GOLDEN_PATH).extend(spec_records(GOLDEN_SPEC, fresh))
        golden = ResultStore(GOLDEN_PATH)
        assert golden.path.is_file(), (
            "golden store missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        diff = golden.diff(fresh)
        assert diff.is_clean, f"metrics drifted from golden store: {diff.summary()}"

    def test_injected_drift_is_detected(self, tmp_path):
        """The gate actually bites: a perturbed metric flips the diff."""
        golden = ResultStore(GOLDEN_PATH)
        records = golden.records()
        assert records, "golden store missing"
        tampered = ResultStore(tmp_path / "tampered.jsonl")
        tampered.extend(records[:-1])
        last = records[-1]
        tampered.append(
            last.config,
            {**last.metrics, "test_accuracy": last.metrics["test_accuracy"] + 0.01},
            key=last.key,
        )
        diff = golden.diff(tampered)
        assert not diff.is_clean
        assert any(change.metric == "test_accuracy" for change in diff.changed)

    def test_golden_metrics_within_sane_ranges(self):
        """The pinned metrics themselves stay physically meaningful."""
        records = ResultStore(GOLDEN_PATH).records()
        assert len(records) == len(GOLDEN_SPEC.expand())
        for record in records:
            assert 0.0 <= record.metrics["test_accuracy"] <= 1.0
            assert record.metrics["memory_kib"] > 0.0
