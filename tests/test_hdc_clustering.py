"""Unit tests for repro.hdc.clustering (dot-similarity K-means)."""

import numpy as np
import pytest

from repro.hdc.clustering import classwise_clustering, dot_kmeans


def _blobs(num_blobs, per_blob, dimension, separation, rng):
    """Well-separated Gaussian blobs plus their blob labels."""
    gen = np.random.default_rng(rng)
    centers = gen.normal(0.0, separation, size=(num_blobs, dimension))
    samples = np.vstack(
        [centers[i] + gen.normal(0, 0.3, size=(per_blob, dimension)) for i in range(num_blobs)]
    )
    labels = np.repeat(np.arange(num_blobs), per_blob)
    return samples, labels


class TestDotKMeans:
    def test_result_shapes(self):
        samples, _ = _blobs(3, 20, 8, 5.0, 0)
        result = dot_kmeans(samples, 3, rng=0)
        assert result.centroids.shape == (3, 8)
        assert result.assignments.shape == (60,)
        assert result.num_clusters == 3

    def test_assignments_within_range(self):
        samples, _ = _blobs(4, 10, 6, 4.0, 1)
        result = dot_kmeans(samples, 4, rng=1)
        assert result.assignments.min() >= 0
        assert result.assignments.max() < 4

    def test_separated_blobs_are_recovered(self):
        samples, blob_labels = _blobs(3, 30, 10, 8.0, 2)
        result = dot_kmeans(samples, 3, rng=2)
        # Every blob should map (almost) entirely to a single cluster.
        for blob in range(3):
            assigned = result.assignments[blob_labels == blob]
            dominant_fraction = np.bincount(assigned, minlength=3).max() / assigned.size
            assert dominant_fraction > 0.9

    def test_single_cluster_is_mean(self):
        samples = np.random.default_rng(3).normal(size=(20, 5))
        result = dot_kmeans(samples, 1, rng=3)
        assert np.allclose(result.centroids[0], samples.mean(axis=0))
        assert result.converged

    def test_no_empty_clusters(self):
        samples, _ = _blobs(2, 50, 6, 5.0, 4)
        result = dot_kmeans(samples, 8, rng=4)
        sizes = result.cluster_sizes()
        assert sizes.shape == (8,)
        assert np.all(sizes > 0)

    def test_deterministic_with_seed(self):
        samples, _ = _blobs(3, 15, 7, 4.0, 5)
        a = dot_kmeans(samples, 3, rng=42)
        b = dot_kmeans(samples, 3, rng=42)
        assert np.array_equal(a.assignments, b.assignments)
        assert np.allclose(a.centroids, b.centroids)

    def test_random_init_also_works(self):
        samples, _ = _blobs(3, 20, 6, 6.0, 6)
        result = dot_kmeans(samples, 3, rng=6, init="random")
        assert result.centroids.shape == (3, 6)

    def test_unknown_init_raises(self):
        with pytest.raises(ValueError):
            dot_kmeans(np.zeros((5, 3)), 2, init="bogus")

    def test_more_clusters_than_samples_raises(self):
        with pytest.raises(ValueError):
            dot_kmeans(np.zeros((3, 2)), 4)

    def test_zero_clusters_raises(self):
        with pytest.raises(ValueError):
            dot_kmeans(np.zeros((3, 2)), 0)

    def test_1d_input_raises(self):
        with pytest.raises(ValueError):
            dot_kmeans(np.zeros(5), 2)

    def test_iterations_bounded(self):
        samples, _ = _blobs(4, 25, 8, 3.0, 7)
        result = dot_kmeans(samples, 4, max_iterations=3, rng=7)
        assert result.iterations <= 3

    def test_inertia_improves_with_more_clusters(self):
        samples, _ = _blobs(4, 25, 8, 5.0, 8)
        few = dot_kmeans(samples, 2, rng=8)
        many = dot_kmeans(samples, 6, rng=8)
        assert many.inertia <= few.inertia

    def test_assignment_is_argmax_dot(self):
        samples, _ = _blobs(3, 20, 6, 5.0, 9)
        result = dot_kmeans(samples, 3, rng=9)
        sims = samples @ result.centroids.T
        assert np.array_equal(result.assignments, np.argmax(sims, axis=1))


class TestClasswiseClustering:
    def test_returns_one_result_per_class(self):
        samples, labels = _blobs(4, 20, 6, 5.0, 0)
        results = classwise_clustering(samples, labels, clusters_per_class=2, rng=0)
        assert set(results.keys()) == {0, 1, 2, 3}

    def test_requested_cluster_count(self):
        samples, labels = _blobs(3, 30, 6, 5.0, 1)
        results = classwise_clustering(samples, labels, clusters_per_class=3, rng=1)
        for result in results.values():
            assert result.num_clusters == 3

    def test_per_class_mapping(self):
        samples, labels = _blobs(3, 20, 5, 5.0, 2)
        results = classwise_clustering(
            samples, labels, clusters_per_class={0: 1, 1: 2, 2: 3}, rng=2
        )
        assert results[0].num_clusters == 1
        assert results[1].num_clusters == 2
        assert results[2].num_clusters == 3

    def test_sequence_mapping(self):
        samples, labels = _blobs(2, 15, 5, 5.0, 3)
        results = classwise_clustering(samples, labels, clusters_per_class=[2, 4], rng=3)
        assert results[0].num_clusters == 2
        assert results[1].num_clusters == 4

    def test_request_clipped_to_sample_count(self):
        samples, labels = _blobs(2, 3, 4, 5.0, 4)
        results = classwise_clustering(samples, labels, clusters_per_class=10, rng=4)
        for result in results.values():
            assert result.num_clusters == 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            classwise_clustering(np.zeros((4, 3)), np.zeros(5), 1)

    def test_deterministic(self):
        samples, labels = _blobs(3, 20, 6, 4.0, 5)
        a = classwise_clustering(samples, labels, 2, rng=99)
        b = classwise_clustering(samples, labels, 2, rng=99)
        for class_label in a:
            assert np.allclose(a[class_label].centroids, b[class_label].centroids)
