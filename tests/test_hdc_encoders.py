"""Unit tests for repro.hdc.encoders."""

import numpy as np
import pytest

from repro.hdc.encoders import IDLevelEncoder, RandomProjectionEncoder
from repro.hdc.similarity import cosine_similarity


class TestRandomProjectionEncoder:
    def test_output_shape_batch(self):
        encoder = RandomProjectionEncoder(10, 64, rng=0)
        out = encoder.encode(np.random.default_rng(0).random((5, 10)))
        assert out.shape == (5, 64)

    def test_output_shape_single(self):
        encoder = RandomProjectionEncoder(10, 64, rng=0)
        out = encoder.encode(np.random.default_rng(0).random(10))
        assert out.shape == (64,)

    def test_output_is_bipolar_by_default(self):
        encoder = RandomProjectionEncoder(8, 32, rng=1)
        out = encoder.encode(np.random.default_rng(1).random((4, 8)))
        assert set(np.unique(out)) <= {-1, 1}

    def test_unquantized_output_is_real(self):
        encoder = RandomProjectionEncoder(8, 32, quantize_output=False, rng=1)
        out = encoder.encode(np.random.default_rng(1).random((4, 8)))
        assert out.dtype == np.float32
        assert not set(np.unique(out)) <= {-1.0, 1.0}

    def test_projection_matrix_shape_and_alphabet(self):
        encoder = RandomProjectionEncoder(12, 48, rng=2)
        assert encoder.projection.shape == (12, 48)
        assert set(np.unique(encoder.projection)) <= {-1, 1}

    def test_projection_binary_view(self):
        encoder = RandomProjectionEncoder(12, 48, rng=2)
        binary = encoder.projection_binary
        assert set(np.unique(binary)) <= {0, 1}
        assert np.array_equal(2 * binary - 1, encoder.projection)

    def test_projection_binary_requires_binary_projection(self):
        encoder = RandomProjectionEncoder(6, 16, binary_projection=False, rng=3)
        with pytest.raises(ValueError):
            _ = encoder.projection_binary

    def test_gaussian_projection(self):
        encoder = RandomProjectionEncoder(6, 16, binary_projection=False, rng=3)
        assert encoder.projection.dtype == np.float32

    def test_encoding_deterministic(self):
        features = np.random.default_rng(4).random((3, 20))
        a = RandomProjectionEncoder(20, 100, rng=7).encode(features)
        b = RandomProjectionEncoder(20, 100, rng=7).encode(features)
        assert np.array_equal(a, b)

    def test_encoding_matches_manual_mvm(self):
        encoder = RandomProjectionEncoder(5, 9, rng=8)
        features = np.random.default_rng(8).random(5)
        projected = features @ encoder.projection.astype(np.float64)
        expected = np.where(projected >= 0, 1, -1)
        assert np.array_equal(encoder.encode(features), expected)

    def test_similar_inputs_have_similar_codes(self):
        encoder = RandomProjectionEncoder(50, 2048, rng=9)
        gen = np.random.default_rng(9)
        base = gen.random(50)
        near = base + gen.normal(0, 0.01, 50)
        far = gen.random(50)
        sim_near = cosine_similarity(
            encoder.encode(base).astype(float), encoder.encode(near).astype(float)
        )
        sim_far = cosine_similarity(
            encoder.encode(base).astype(float), encoder.encode(far).astype(float)
        )
        assert sim_near > sim_far

    def test_memory_bits_binary(self):
        encoder = RandomProjectionEncoder(784, 128, rng=0)
        assert encoder.memory_bits() == 784 * 128

    def test_memory_bits_float(self):
        encoder = RandomProjectionEncoder(10, 16, binary_projection=False, rng=0)
        assert encoder.memory_bits() == 10 * 16 * 32

    def test_encode_binary_roundtrip(self):
        encoder = RandomProjectionEncoder(10, 32, rng=5)
        features = np.random.default_rng(5).random((3, 10))
        bipolar = encoder.encode(features)
        binary = encoder.encode_binary(features)
        assert np.array_equal(2 * binary - 1, bipolar)

    def test_encode_binary_requires_quantized_output(self):
        encoder = RandomProjectionEncoder(10, 32, quantize_output=False, rng=5)
        with pytest.raises(ValueError):
            encoder.encode_binary(np.random.default_rng(0).random((2, 10)))

    def test_wrong_feature_count_raises(self):
        encoder = RandomProjectionEncoder(10, 32, rng=5)
        with pytest.raises(ValueError):
            encoder.encode(np.zeros((2, 11)))

    def test_3d_input_raises(self):
        encoder = RandomProjectionEncoder(10, 32, rng=5)
        with pytest.raises(ValueError):
            encoder.encode(np.zeros((2, 3, 10)))

    @pytest.mark.parametrize("num_features,dimension", [(0, 8), (8, 0), (-2, 8)])
    def test_invalid_construction(self, num_features, dimension):
        with pytest.raises(ValueError):
            RandomProjectionEncoder(num_features, dimension)

    def test_callable_interface(self):
        encoder = RandomProjectionEncoder(4, 8, rng=0)
        features = np.random.default_rng(0).random((2, 4))
        assert np.array_equal(encoder(features), encoder.encode(features))


class TestIDLevelEncoder:
    def test_output_shape(self):
        encoder = IDLevelEncoder(6, 64, num_levels=8, rng=0)
        out = encoder.encode(np.random.default_rng(0).random((3, 6)))
        assert out.shape == (3, 64)

    def test_single_vector_shape(self):
        encoder = IDLevelEncoder(6, 64, num_levels=8, rng=0)
        assert encoder.encode(np.random.default_rng(0).random(6)).shape == (64,)

    def test_output_is_bipolar(self):
        encoder = IDLevelEncoder(6, 128, num_levels=8, rng=1)
        out = encoder.encode(np.random.default_rng(1).random((4, 6)))
        assert set(np.unique(out)) <= {-1, 1}

    def test_unquantized_output(self):
        encoder = IDLevelEncoder(6, 32, num_levels=8, quantize_output=False, rng=1)
        out = encoder.encode(np.random.default_rng(1).random((2, 6)))
        assert out.dtype == np.float32

    def test_level_quantization_range(self):
        encoder = IDLevelEncoder(3, 16, num_levels=10, rng=2)
        levels = encoder.quantize_values(np.array([[0.0, 0.5, 1.0]]))
        assert levels.min() >= 0
        assert levels.max() <= 9
        assert levels[0, 0] == 0
        assert levels[0, 2] == 9

    def test_values_outside_range_are_clipped(self):
        encoder = IDLevelEncoder(2, 16, num_levels=4, rng=3)
        levels = encoder.quantize_values(np.array([[-5.0, 5.0]]))
        assert levels[0, 0] == 0
        assert levels[0, 1] == 3

    def test_custom_value_range(self):
        encoder = IDLevelEncoder(1, 16, num_levels=4, value_range=(-1.0, 1.0), rng=4)
        assert encoder.quantize_values(np.array([[-1.0]]))[0, 0] == 0
        assert encoder.quantize_values(np.array([[1.0]]))[0, 0] == 3

    def test_deterministic(self):
        features = np.random.default_rng(5).random((3, 5))
        a = IDLevelEncoder(5, 64, num_levels=8, rng=11).encode(features)
        b = IDLevelEncoder(5, 64, num_levels=8, rng=11).encode(features)
        assert np.array_equal(a, b)

    def test_similar_inputs_more_similar_than_dissimilar(self):
        encoder = IDLevelEncoder(20, 2048, num_levels=32, rng=6)
        gen = np.random.default_rng(6)
        base = gen.random(20)
        near = np.clip(base + gen.normal(0, 0.02, 20), 0, 1)
        far = gen.random(20)
        code_base = encoder.encode(base).astype(float)
        sim_near = cosine_similarity(code_base, encoder.encode(near).astype(float))
        sim_far = cosine_similarity(code_base, encoder.encode(far).astype(float))
        assert sim_near > sim_far

    def test_memory_bits_table1_formula(self):
        encoder = IDLevelEncoder(617, 1024, num_levels=256, rng=0)
        assert encoder.memory_bits() == (617 + 256) * 1024

    def test_wrong_feature_count_raises(self):
        encoder = IDLevelEncoder(5, 16, rng=0)
        with pytest.raises(ValueError):
            encoder.encode(np.zeros((2, 6)))

    def test_invalid_levels_raises(self):
        with pytest.raises(ValueError):
            IDLevelEncoder(5, 16, num_levels=1)

    def test_invalid_value_range_raises(self):
        with pytest.raises(ValueError):
            IDLevelEncoder(5, 16, value_range=(1.0, 0.0))

    def test_id_and_level_tables_have_expected_shapes(self):
        encoder = IDLevelEncoder(7, 32, num_levels=5, rng=1)
        assert encoder.id_vectors.shape == (7, 32)
        assert encoder.level_vectors.shape == (5, 32)
