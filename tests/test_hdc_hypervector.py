"""Unit tests for repro.hdc.hypervector."""

import numpy as np
import pytest

from repro.hdc import hypervector as hv


class TestRandomBinaryHypervectors:
    def test_shape_and_dtype(self):
        out = hv.random_binary_hypervectors(5, 100, rng=0)
        assert out.shape == (5, 100)
        assert out.dtype == np.int8

    def test_values_are_binary(self):
        out = hv.random_binary_hypervectors(3, 500, rng=1)
        assert set(np.unique(out)) <= {0, 1}

    def test_density_default_half(self):
        out = hv.random_binary_hypervectors(20, 2000, rng=2)
        assert abs(out.mean() - 0.5) < 0.02

    def test_density_parameter(self):
        out = hv.random_binary_hypervectors(20, 2000, rng=3, density=0.2)
        assert abs(out.mean() - 0.2) < 0.02

    def test_deterministic_with_seed(self):
        a = hv.random_binary_hypervectors(4, 64, rng=42)
        b = hv.random_binary_hypervectors(4, 64, rng=42)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = hv.random_binary_hypervectors(4, 256, rng=1)
        b = hv.random_binary_hypervectors(4, 256, rng=2)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("count,dimension", [(0, 10), (-1, 10), (3, 0), (3, -5)])
    def test_invalid_shapes_raise(self, count, dimension):
        with pytest.raises(ValueError):
            hv.random_binary_hypervectors(count, dimension)

    @pytest.mark.parametrize("density", [-0.1, 1.5])
    def test_invalid_density_raises(self, density):
        with pytest.raises(ValueError):
            hv.random_binary_hypervectors(2, 10, density=density)

    def test_generator_instance_accepted(self):
        gen = np.random.default_rng(9)
        out = hv.random_binary_hypervectors(2, 16, rng=gen)
        assert out.shape == (2, 16)


class TestRandomBipolarHypervectors:
    def test_values_are_bipolar(self):
        out = hv.random_bipolar_hypervectors(4, 200, rng=0)
        assert set(np.unique(out)) <= {-1, 1}

    def test_near_zero_mean(self):
        out = hv.random_bipolar_hypervectors(10, 4000, rng=1)
        assert abs(out.mean()) < 0.05

    def test_random_pairs_nearly_orthogonal(self):
        out = hv.random_bipolar_hypervectors(2, 10000, rng=2).astype(np.float64)
        cosine = out[0] @ out[1] / 10000
        assert abs(cosine) < 0.05


class TestRandomGaussianHypervectors:
    def test_shape_and_dtype(self):
        out = hv.random_gaussian_hypervectors(3, 50, rng=0)
        assert out.shape == (3, 50)
        assert out.dtype == np.float32

    def test_scale(self):
        out = hv.random_gaussian_hypervectors(50, 200, rng=1, scale=2.0)
        assert 1.8 < out.std() < 2.2

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            hv.random_gaussian_hypervectors(0, 10)


class TestLevelHypervectors:
    def test_shape(self):
        levels = hv.level_hypervectors(8, 128, rng=0)
        assert levels.shape == (8, 128)

    def test_bipolar_values(self):
        levels = hv.level_hypervectors(4, 64, rng=1)
        assert set(np.unique(levels)) <= {-1, 1}

    def test_extreme_levels_nearly_orthogonal(self):
        levels = hv.level_hypervectors(16, 4096, rng=2).astype(np.float64)
        similarity = levels[0] @ levels[-1] / 4096
        assert abs(similarity) < 0.1

    def test_adjacent_levels_highly_similar(self):
        levels = hv.level_hypervectors(16, 4096, rng=3).astype(np.float64)
        similarity = levels[0] @ levels[1] / 4096
        assert similarity > 0.8

    def test_similarity_decreases_monotonically_with_distance(self):
        levels = hv.level_hypervectors(10, 8000, rng=4).astype(np.float64)
        sims = [levels[0] @ levels[i] / 8000 for i in range(10)]
        # Allow small non-monotonic noise but require a clear overall decay.
        assert sims[0] > sims[4] > sims[9] - 0.05

    def test_total_flips_cover_half_the_positions(self):
        dimension = 100
        levels = hv.level_hypervectors(5, dimension, rng=5)
        flipped = (levels[0] != levels[-1]).sum()
        assert flipped == dimension // 2

    def test_too_few_levels_raises(self):
        with pytest.raises(ValueError):
            hv.level_hypervectors(1, 64)


class TestBundleBindPermute:
    def test_bundle_sums_elementwise(self):
        vectors = np.array([[1, -1, 1], [1, 1, -1], [1, -1, -1]])
        assert np.array_equal(hv.bundle(vectors), [3, -1, -1])

    def test_bundle_axis(self):
        vectors = np.array([[1, 2], [3, 4]])
        assert np.array_equal(hv.bundle(vectors, axis=1), [3, 7])

    def test_bundle_scalar_raises(self):
        with pytest.raises(ValueError):
            hv.bundle(np.float64(3.0))

    def test_bundle_preserves_similarity_to_constituents(self):
        vectors = hv.random_bipolar_hypervectors(5, 2000, rng=0).astype(np.float64)
        bundled = hv.bundle(vectors)
        other = hv.random_bipolar_hypervectors(1, 2000, rng=1)[0].astype(np.float64)
        for vector in vectors:
            assert bundled @ vector > abs(bundled @ other)

    def test_bind_is_elementwise_product(self):
        a = np.array([1, -1, 1, -1])
        b = np.array([1, 1, -1, -1])
        assert np.array_equal(hv.bind(a, b), [1, -1, -1, 1])

    def test_bind_result_dissimilar_to_operands(self):
        a = hv.random_bipolar_hypervectors(1, 4000, rng=0)[0].astype(np.float64)
        b = hv.random_bipolar_hypervectors(1, 4000, rng=1)[0].astype(np.float64)
        bound = hv.bind(a, b)
        assert abs(bound @ a) / 4000 < 0.06
        assert abs(bound @ b) / 4000 < 0.06

    def test_bind_is_self_inverse_for_bipolar(self):
        a = hv.random_bipolar_hypervectors(1, 512, rng=2)[0]
        b = hv.random_bipolar_hypervectors(1, 512, rng=3)[0]
        assert np.array_equal(hv.bind(hv.bind(a, b), b), a)

    def test_bind_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            hv.bind(np.ones(4), np.ones(5))

    def test_permute_rolls(self):
        vector = np.array([1, 2, 3, 4])
        assert np.array_equal(hv.permute(vector, 1), [4, 1, 2, 3])

    def test_permute_inverse(self):
        vector = hv.random_bipolar_hypervectors(1, 64, rng=0)[0]
        assert np.array_equal(hv.permute(hv.permute(vector, 3), -3), vector)

    def test_permute_batch_applies_last_axis(self):
        batch = np.array([[1, 2, 3], [4, 5, 6]])
        rolled = hv.permute(batch, 1)
        assert np.array_equal(rolled, [[3, 1, 2], [6, 4, 5]])


class TestQuantizers:
    def test_binarize_with_explicit_threshold(self):
        assert np.array_equal(hv.binarize([0.1, 0.6, 0.4], threshold=0.5), [0, 1, 0])

    def test_binarize_defaults_to_mean(self):
        values = np.array([0.0, 0.0, 10.0, 10.0])
        assert np.array_equal(hv.binarize(values), [0, 0, 1, 1])

    def test_binarize_strictly_greater(self):
        values = np.array([1.0, 2.0, 3.0])
        # mean is 2.0; only the 3.0 entry exceeds it strictly.
        assert np.array_equal(hv.binarize(values), [0, 0, 1])

    def test_bipolarize_sign_with_tie_up(self):
        assert np.array_equal(hv.bipolarize([-0.5, 0.0, 0.5]), [-1, 1, 1])

    def test_bipolarize_custom_threshold(self):
        assert np.array_equal(hv.bipolarize([1.0, 3.0], threshold=2.0), [-1, 1])

    def test_to_bipolar_roundtrip(self):
        binary = np.array([[0, 1, 1], [1, 0, 0]])
        assert np.array_equal(hv.to_binary(hv.to_bipolar(binary)), binary)

    def test_to_bipolar_rejects_other_values(self):
        with pytest.raises(ValueError):
            hv.to_bipolar(np.array([0, 2]))

    def test_to_binary_rejects_other_values(self):
        with pytest.raises(ValueError):
            hv.to_binary(np.array([0, 1]))


class TestMajorityBundle:
    def test_odd_count_has_no_ties(self):
        vectors = hv.random_bipolar_hypervectors(5, 256, rng=0)
        result = hv.majority_bundle(vectors, rng=1)
        assert set(np.unique(result)) <= {-1, 1}
        expected_sign = np.sign(vectors.sum(axis=0))
        agree = (result == expected_sign)[expected_sign != 0]
        assert agree.all()

    def test_tie_breaking_is_bipolar(self):
        vectors = np.array([[1, -1], [-1, 1]], dtype=np.int8)
        result = hv.majority_bundle(vectors, rng=0)
        assert set(np.unique(result)) <= {-1, 1}

    def test_deterministic_given_seed(self):
        vectors = hv.random_bipolar_hypervectors(4, 128, rng=5)
        a = hv.majority_bundle(vectors, rng=9)
        b = hv.majority_bundle(vectors, rng=9)
        assert np.array_equal(a, b)


class TestHypervectorCounts:
    def test_accumulates(self):
        vectors = [np.array([1, 0, 1]), np.array([1, 1, 0]), np.array([0, 1, 1])]
        assert np.array_equal(hv.hypervector_counts(vectors), [2, 2, 2])

    def test_empty_iterable_raises(self):
        with pytest.raises(ValueError):
            hv.hypervector_counts([])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hv.hypervector_counts([np.zeros(3), np.zeros(4)])


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(hv._as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = hv._as_generator(7).random(3)
        b = hv._as_generator(7).random(3)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert hv._as_generator(gen) is gen
