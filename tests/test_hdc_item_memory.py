"""Unit tests for repro.hdc.item_memory."""

import numpy as np
import pytest

from repro.hdc.hypervector import bipolarize
from repro.hdc.item_memory import ItemMemory


class TestContainerBasics:
    def test_empty_memory(self):
        memory = ItemMemory(64, rng=0)
        assert len(memory) == 0
        assert "x" not in memory
        assert memory.names() == ()

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            ItemMemory(0)

    def test_add_random_and_lookup(self):
        memory = ItemMemory(128, rng=0)
        vector = memory.add_random("apple")
        assert "apple" in memory
        assert np.array_equal(memory["apple"], vector)
        assert memory.names() == ("apple",)

    def test_add_explicit_vector(self):
        memory = ItemMemory(8, rng=0)
        vector = np.array([1, -1, 1, 1, -1, -1, 1, -1], dtype=np.int8)
        memory.add("x", vector)
        assert np.array_equal(memory.vector("x"), vector)

    def test_duplicate_name_rejected(self):
        memory = ItemMemory(16, rng=0)
        memory.add_random("x")
        with pytest.raises(ValueError):
            memory.add_random("x")

    def test_wrong_shape_rejected(self):
        memory = ItemMemory(16, rng=0)
        with pytest.raises(ValueError):
            memory.add("x", np.ones(8, dtype=np.int8))

    def test_non_bipolar_rejected(self):
        memory = ItemMemory(4, rng=0)
        with pytest.raises(ValueError):
            memory.add("x", np.array([0, 1, 0, 1]))

    def test_unknown_name_raises(self):
        memory = ItemMemory(4, rng=0)
        with pytest.raises(KeyError):
            memory.vector("missing")

    def test_get_or_create(self):
        memory = ItemMemory(32, rng=0)
        first = memory.get_or_create("token")
        second = memory.get_or_create("token")
        assert np.array_equal(first, second)
        assert len(memory) == 1

    def test_vector_returns_copy(self):
        memory = ItemMemory(16, rng=0)
        memory.add_random("x")
        vector = memory.vector("x")
        vector[:] = 1
        assert not np.array_equal(memory.vector("x"), vector) or memory.vector("x").sum() != 16


class TestCleanup:
    def test_exact_item_recovered(self):
        memory = ItemMemory(256, rng=1)
        for name in ("a", "b", "c", "d"):
            memory.add_random(name)
        name, similarity = memory.cleanup(memory.vector("c").astype(float))
        assert name == "c"
        assert similarity == pytest.approx(1.0)

    def test_noisy_item_recovered(self):
        memory = ItemMemory(1024, rng=2)
        for name in ("a", "b", "c", "d", "e"):
            memory.add_random(name)
        original = memory.vector("b").astype(np.float64)
        noisy = original.copy()
        flip = np.random.default_rng(0).choice(1024, size=200, replace=False)
        noisy[flip] = -noisy[flip]  # ~20% bit flips
        name, similarity = memory.cleanup(noisy)
        assert name == "b"
        assert 0.4 < similarity < 1.0

    def test_cleanup_empty_memory_raises(self):
        with pytest.raises(ValueError):
            ItemMemory(16, rng=0).cleanup(np.ones(16))

    def test_cleanup_wrong_shape_raises(self):
        memory = ItemMemory(16, rng=0)
        memory.add_random("x")
        with pytest.raises(ValueError):
            memory.cleanup(np.ones(8))

    def test_cleanup_batch(self):
        memory = ItemMemory(512, rng=3)
        names = ["w", "x", "y", "z"]
        for name in names:
            memory.add_random(name)
        queries = np.vstack([memory.vector(name) for name in reversed(names)]).astype(float)
        assert memory.cleanup_batch(queries) == list(reversed(names))

    def test_bundled_sequence_items_recoverable(self):
        """Each constituent of a bundled sequence cleans up to itself."""
        memory = ItemMemory(2048, rng=4)
        bundled = memory.encode_sequence(["alpha", "beta", "gamma"])
        # The bundle is closest to its constituents, and each constituent is
        # recovered when queried directly.
        for name in ("alpha", "beta", "gamma"):
            recovered, _ = memory.cleanup(memory.vector(name).astype(float))
            assert recovered == name
        bundle_winner, _ = memory.cleanup(bipolarize(bundled).astype(float))
        assert bundle_winner in ("alpha", "beta", "gamma")

    def test_encode_sequence_empty_raises(self):
        with pytest.raises(ValueError):
            ItemMemory(16, rng=0).encode_sequence([])


class TestExports:
    def test_as_matrix_shape(self):
        memory = ItemMemory(32, rng=5)
        for index in range(4):
            memory.add_random(f"item{index}")
        matrix = memory.as_matrix()
        assert matrix.shape == (4, 32)
        assert set(np.unique(matrix)) <= {-1, 1}

    def test_as_binary_matrix_is_imc_layout(self):
        memory = ItemMemory(32, rng=6)
        for index in range(3):
            memory.add_random(f"item{index}")
        binary = memory.as_binary_matrix()
        assert binary.shape == (32, 3)
        assert set(np.unique(binary)) <= {0, 1}

    def test_as_binary_matrix_empty_raises(self):
        with pytest.raises(ValueError):
            ItemMemory(8, rng=0).as_binary_matrix()

    def test_memory_bits(self):
        memory = ItemMemory(64, rng=7)
        memory.add_random("a")
        memory.add_random("b")
        assert memory.memory_bits() == 2 * 64

    def test_cleanup_maps_onto_imc_array(self):
        """Cleanup-by-MVM on tiled IMC arrays matches the software cleanup."""
        from repro.imc.array import IMCArrayConfig
        from repro.imc.mapping import tile_matrix

        memory = ItemMemory(96, rng=8)
        names = [f"sym{i}" for i in range(10)]
        for name in names:
            memory.add_random(name)
        tiled = tile_matrix(memory.as_binary_matrix(), IMCArrayConfig(32, 8))
        query_name = "sym7"
        query_binary = (memory.vector(query_name) > 0).astype(np.float64)
        scores = tiled.mvm(query_binary)
        assert names[int(np.argmax(scores))] == query_name
