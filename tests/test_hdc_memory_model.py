"""Unit tests for repro.hdc.memory_model (paper Table I formulas)."""

import pytest

from repro.hdc.memory_model import (
    MemoryReport,
    TABLE1_MODEL_FAMILIES,
    associative_memory_bits,
    bits_to_kib,
    id_level_encoder_bits,
    model_memory_report,
    projection_encoder_bits,
)


class TestPrimitiveFormulas:
    def test_projection_bits(self):
        assert projection_encoder_bits(784, 10240) == 784 * 10240

    def test_id_level_bits(self):
        assert id_level_encoder_bits(784, 256, 10240) == (784 + 256) * 10240

    def test_am_bits_single_vector_per_class(self):
        assert associative_memory_bits(10, 10240) == 10 * 10240

    def test_am_bits_with_quantization_factor(self):
        assert associative_memory_bits(10, 8000, quantization_factor=64) == 10 * 8000 * 64

    def test_bits_to_kib(self):
        assert bits_to_kib(8 * 1024) == pytest.approx(1.0)
        assert bits_to_kib(0) == 0.0

    def test_negative_bits_raise(self):
        with pytest.raises(ValueError):
            bits_to_kib(-1)

    @pytest.mark.parametrize("args", [(0, 10), (10, 0), (-5, 10)])
    def test_invalid_projection_args(self, args):
        with pytest.raises(ValueError):
            projection_encoder_bits(*args)

    def test_invalid_quantization_factor(self):
        with pytest.raises(ValueError):
            associative_memory_bits(10, 100, quantization_factor=0)


class TestModelMemoryReport:
    def test_basichdc_follows_table1(self):
        report = model_memory_report("BasicHDC", 784, 10240, 10)
        assert report.encoder_bits == 784 * 10240
        assert report.am_bits == 10 * 10240

    def test_memhd_follows_table1(self):
        report = model_memory_report("MEMHD", 784, 128, 10, num_columns=128)
        assert report.encoder_bits == 784 * 128
        assert report.am_bits == 128 * 128

    def test_memhd_requires_columns(self):
        with pytest.raises(ValueError):
            model_memory_report("MEMHD", 784, 128, 10)

    def test_searchd_uses_quantization_factor(self):
        report = model_memory_report("SearcHD", 617, 8000, 26, quantization_factor=64)
        assert report.encoder_bits == (617 + 256) * 8000
        assert report.am_bits == 26 * 8000 * 64

    def test_quanthd_and_lehdc_use_id_level_encoder(self):
        for model in ("QuantHD", "LeHDC"):
            report = model_memory_report(model, 784, 1600, 10)
            assert report.encoder_bits == (784 + 256) * 1600
            assert report.am_bits == 10 * 1600

    def test_case_insensitive_lookup(self):
        report = model_memory_report("memhd", 10, 64, 4, num_columns=16)
        assert report.model == "MEMHD"

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            model_memory_report("FooHD", 10, 64, 4)

    def test_all_table1_families_supported(self):
        for model in TABLE1_MODEL_FAMILIES:
            kwargs = {"num_columns": 32} if model == "MEMHD" else {}
            report = model_memory_report(model, 32, 128, 8, **kwargs)
            assert report.total_bits > 0

    def test_custom_levels(self):
        report = model_memory_report("QuantHD", 100, 512, 5, num_levels=16)
        assert report.encoder_bits == (100 + 16) * 512


class TestMemoryReportProperties:
    def test_totals_and_kib(self):
        report = MemoryReport("MEMHD", encoder_bits=8 * 1024, am_bits=16 * 1024)
        assert report.total_bits == 24 * 1024
        assert report.encoder_kib == pytest.approx(1.0)
        assert report.am_kib == pytest.approx(2.0)
        assert report.total_kib == pytest.approx(3.0)

    def test_as_dict_keys(self):
        report = MemoryReport("X", 10, 20)
        data = report.as_dict()
        assert data["model"] == "X"
        assert data["total_bits"] == 30
        assert set(data) == {
            "model",
            "encoder_bits",
            "am_bits",
            "total_bits",
            "encoder_kib",
            "am_kib",
            "total_kib",
        }

    def test_memhd_is_smaller_than_basichdc_at_paper_sizes(self):
        """The headline memory-efficiency claim at the Table II sizes."""
        basic = model_memory_report("BasicHDC", 784, 10240, 10)
        memhd = model_memory_report("MEMHD", 784, 128, 10, num_columns=128)
        assert basic.total_bits / memhd.total_bits > 50

    def test_memhd_am_larger_dimension_costs_more(self):
        small = model_memory_report("MEMHD", 784, 128, 10, num_columns=128)
        large = model_memory_report("MEMHD", 784, 512, 10, num_columns=512)
        assert large.total_bits > small.total_bits
