"""Unit tests for the bit-packed similarity engine (repro.hdc.packed)."""

import numpy as np
import pytest

from repro.core.associative_memory import MultiCentroidAM
from repro.hdc import _packed_kernels as kernels
from repro.hdc.packed import (
    PackedAM,
    PackedVectors,
    kernel_backend,
    pack_binary,
    pack_bipolar,
    packed_dot_similarity,
    packed_hamming_distance,
    words_per_vector,
)
from repro.hdc.similarity import dot_similarity, hamming_distance

#: Dimensions that exercise single-word, word-aligned and tail-word packing.
DIMENSIONS = [1, 7, 63, 64, 65, 128, 130, 200]


def random_binary(n, dimension, seed=0):
    return np.random.default_rng(seed).integers(0, 2, size=(n, dimension)).astype(
        np.int8
    )


class TestPacking:
    def test_words_per_vector(self):
        assert words_per_vector(1) == 1
        assert words_per_vector(64) == 1
        assert words_per_vector(65) == 2
        with pytest.raises(ValueError):
            words_per_vector(0)

    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_binary_roundtrip(self, dimension):
        vectors = random_binary(5, dimension, seed=dimension)
        packed = pack_binary(vectors)
        assert packed.words.shape == (5, words_per_vector(dimension))
        assert np.array_equal(packed.unpack(), vectors)

    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_bipolar_roundtrip(self, dimension):
        vectors = (2 * random_binary(4, dimension, seed=dimension) - 1).astype(np.int8)
        packed = pack_bipolar(vectors)
        assert np.array_equal(packed.unpack(), vectors)

    @pytest.mark.parametrize("dimension", [63, 65, 130])
    def test_tail_bits_are_zero(self, dimension):
        packed = pack_binary(np.ones((3, dimension), dtype=np.int8))
        bits = np.unpackbits(packed.words.view(np.uint8), axis=-1, bitorder="little")
        assert not bits[:, dimension:].any()

    def test_single_vector_packs_as_one_row(self):
        packed = pack_binary(np.array([1, 0, 1], dtype=np.int8))
        assert packed.words.shape == (1, 1)
        assert len(packed) == 1

    def test_float_inputs_accepted(self):
        packed = pack_bipolar(np.array([[1.0, -1.0, 1.0]]))
        assert np.array_equal(packed.unpack(), [[1, -1, 1]])

    def test_alphabet_validation(self):
        with pytest.raises(ValueError):
            pack_binary(np.array([[0, 1, 2]]))
        with pytest.raises(ValueError):
            pack_bipolar(np.array([[0, 1, -1]]))

    def test_packed_vectors_validation(self):
        words = np.zeros((2, 2), dtype=np.uint64)
        with pytest.raises(ValueError):
            PackedVectors(words=words, dimension=64, alphabet="binary")
        with pytest.raises(ValueError):
            PackedVectors(words=words, dimension=128, alphabet="ternary")

    def test_nbytes_is_eight_bytes_per_word(self):
        packed = pack_binary(random_binary(3, 130))
        assert packed.nbytes == 3 * words_per_vector(130) * 8


class TestPackedSimilarity:
    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_binary_dot_equivalence(self, dimension):
        q = random_binary(6, dimension, seed=1)
        r = random_binary(4, dimension, seed=2)
        expected = q.astype(np.int64) @ r.astype(np.int64).T
        assert np.array_equal(
            packed_dot_similarity(pack_binary(q), pack_binary(r)), expected
        )

    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_bipolar_dot_equivalence(self, dimension):
        q = (2 * random_binary(6, dimension, seed=3) - 1).astype(np.int8)
        r = (2 * random_binary(4, dimension, seed=4) - 1).astype(np.int8)
        expected = q.astype(np.int64) @ r.astype(np.int64).T
        assert np.array_equal(
            packed_dot_similarity(pack_bipolar(q), pack_bipolar(r)), expected
        )

    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_hamming_equivalence(self, dimension):
        q = random_binary(5, dimension, seed=5)
        r = random_binary(3, dimension, seed=6)
        assert np.array_equal(
            packed_hamming_distance(pack_binary(q), pack_binary(r)),
            hamming_distance(q, r),
        )

    def test_alphabet_mismatch_raises(self):
        q = pack_binary(random_binary(2, 32))
        r = pack_bipolar((2 * random_binary(2, 32, seed=1) - 1).astype(np.int8))
        with pytest.raises(ValueError):
            packed_dot_similarity(q, r)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            packed_dot_similarity(
                pack_binary(random_binary(2, 32)), pack_binary(random_binary(2, 33))
            )

    def test_similarity_packed_flag_squeezes_like_unpacked(self):
        q = np.array([1, 0, 1, 1], dtype=np.int8)
        r = random_binary(3, 4, seed=7)
        packed = dot_similarity(q, r, packed=True)
        unpacked = dot_similarity(q, r)
        assert packed.shape == unpacked.shape == (3,)
        assert np.array_equal(packed, unpacked)
        assert dot_similarity(q, q, packed=True) == dot_similarity(q, q)

    def test_similarity_packed_flag_rejects_other_alphabets(self):
        with pytest.raises(ValueError):
            dot_similarity(np.array([[0.5, 1.0]]), np.array([[1.0, 0.0]]), packed=True)


class TestKernelBackends:
    def test_backend_name_is_known(self):
        assert kernel_backend() in ("native", "numpy")

    def test_numpy_backend_matches_active_backend(self):
        q = pack_binary(random_binary(9, 200, seed=8))
        r = pack_binary(random_binary(33, 200, seed=9))  # > one numpy block
        active_and = packed_dot_similarity(q, r)
        active_xor = packed_hamming_distance(q, r)
        kernels.set_backend("numpy")
        try:
            assert np.array_equal(packed_dot_similarity(q, r), active_and)
            assert np.array_equal(packed_hamming_distance(q, r), active_xor)
        finally:
            kernels.set_backend(None)

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            kernels.set_backend("fpga")

    def test_kernels_reject_bad_operands(self):
        words = np.zeros((2, 2), dtype=np.uint64)
        with pytest.raises(ValueError):
            kernels.and_popcount(words, np.zeros((2, 3), dtype=np.uint64))
        with pytest.raises(ValueError):
            kernels.and_popcount(words.astype(np.int64), words)


class TestPackedAM:
    @pytest.fixture()
    def am(self):
        rng = np.random.default_rng(11)
        fp = rng.normal(size=(10, 70))  # odd dimension -> tail word
        classes = np.array([0, 0, 1, 1, 1, 2, 2, 3, 3, 3])
        return MultiCentroidAM(fp, classes, num_classes=4)

    def test_scores_match_float_path(self, am):
        queries = random_binary(12, am.dimension, seed=12)
        float_scores = am.scores(queries)
        packed_scores = am.scores(queries, packed=True)
        assert np.array_equal(packed_scores, float_scores.astype(np.int64))

    def test_predictions_and_class_scores_match(self, am):
        queries = random_binary(20, am.dimension, seed=13)
        assert np.array_equal(am.predict(queries), am.predict(queries, packed=True))
        assert np.array_equal(
            am.class_scores(queries), am.class_scores(queries, packed=True)
        )

    def test_single_query_squeeze(self, am):
        query = random_binary(1, am.dimension, seed=14)[0]
        assert am.scores(query, packed=True).shape == (am.num_columns,)

    def test_packed_mirror_is_cached_and_invalidated(self, am):
        first = am.packed()
        assert am.packed() is first
        am.fp_memory += 1.0
        am.refresh_binary()
        assert am.packed() is not first

    def test_packed_am_standalone(self, am):
        packed_am = PackedAM.from_binary_memory(
            am.binary_memory, am.column_classes, am.num_classes
        )
        queries = random_binary(5, am.dimension, seed=15)
        assert np.array_equal(packed_am.predict(queries), am.predict(queries))
        assert packed_am.num_columns == am.num_columns
        assert packed_am.dimension == am.dimension
        assert packed_am.columns_per_class() == am.columns_per_class()

    def test_memory_is_packed_eight_to_one(self, am):
        packed_am = am.packed()
        words = words_per_vector(am.dimension)
        assert packed_am.memory_bytes() == am.num_columns * words * 8
        # Word-aligned dimensions give the exact 8x cut over int8 storage.
        aligned = random_binary(8, 128, seed=20)
        aligned_am = PackedAM.from_binary_memory(aligned, np.arange(8) % 3)
        assert aligned_am.memory_bytes() * 8 == aligned.nbytes

    def test_query_dimension_mismatch(self, am):
        with pytest.raises(ValueError):
            am.packed().scores(random_binary(2, am.dimension + 1))

    def test_column_class_validation(self):
        memory = random_binary(4, 32)
        with pytest.raises(ValueError):
            PackedAM.from_binary_memory(memory, np.array([0, 1]))
        with pytest.raises(ValueError):
            PackedAM.from_binary_memory(memory, np.array([0, 1, 2, 3]), num_classes=2)
