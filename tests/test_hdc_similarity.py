"""Unit tests for repro.hdc.similarity."""

import numpy as np
import pytest

from repro.hdc import similarity as sim
from repro.hdc.hypervector import random_bipolar_hypervectors, to_binary


class TestDotSimilarity:
    def test_single_pair_returns_scalar(self):
        value = sim.dot_similarity(np.array([1, 2, 3]), np.array([4, 5, 6]))
        assert value == pytest.approx(32.0)

    def test_batch_vs_single_reference(self):
        queries = np.array([[1, 0], [0, 1]])
        reference = np.array([2, 3])
        result = sim.dot_similarity(queries, reference)
        assert result.shape == (2,)
        assert np.allclose(result, [2, 3])

    def test_single_query_vs_batch(self):
        query = np.array([1, 1])
        references = np.array([[1, 0], [0, 1], [1, 1]])
        result = sim.dot_similarity(query, references)
        assert np.allclose(result, [1, 1, 2])

    def test_full_matrix_shape(self):
        queries = np.ones((3, 5))
        references = np.ones((4, 5))
        assert sim.dot_similarity(queries, references).shape == (3, 4)

    def test_matches_matmul(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(6, 10))
        r = rng.normal(size=(4, 10))
        assert np.allclose(sim.dot_similarity(q, r), q @ r.T)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            sim.dot_similarity(np.ones((2, 3)), np.ones((2, 4)))

    def test_3d_input_raises(self):
        with pytest.raises(ValueError):
            sim.dot_similarity(np.ones((2, 3, 4)), np.ones((2, 4)))

    def test_self_similarity_of_bipolar_equals_dimension(self):
        vec = random_bipolar_hypervectors(1, 200, rng=0)[0]
        assert sim.dot_similarity(vec, vec) == 200


class TestCosineSimilarity:
    def test_identical_vectors_give_one(self):
        vec = np.array([1.0, 2.0, 3.0])
        assert sim.cosine_similarity(vec, vec) == pytest.approx(1.0)

    def test_opposite_vectors_give_minus_one(self):
        vec = np.array([1.0, -2.0, 0.5])
        assert sim.cosine_similarity(vec, -vec) == pytest.approx(-1.0)

    def test_orthogonal_vectors_give_zero(self):
        assert sim.cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_scale_invariance(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([0.5, -1.0, 2.0])
        assert sim.cosine_similarity(a, b) == pytest.approx(
            sim.cosine_similarity(10 * a, 0.1 * b)
        )

    def test_zero_vector_does_not_blow_up(self):
        value = sim.cosine_similarity(np.zeros(4), np.ones(4))
        assert np.isfinite(value)

    def test_bounds(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(5, 20))
        r = rng.normal(size=(6, 20))
        values = sim.cosine_similarity(q, r)
        assert np.all(values <= 1.0 + 1e-12)
        assert np.all(values >= -1.0 - 1e-12)

    def test_matrix_shape(self):
        assert sim.cosine_similarity(np.ones((3, 4)), np.ones((2, 4))).shape == (3, 2)


class TestHamming:
    def test_distance_counts_mismatches(self):
        a = np.array([0, 1, 1, 0])
        b = np.array([1, 1, 0, 0])
        assert sim.hamming_distance(a, b) == 2

    def test_distance_zero_for_identical(self):
        a = np.array([0, 1, 0, 1])
        assert sim.hamming_distance(a, a) == 0

    def test_similarity_complement(self):
        a = np.array([0, 1, 1, 0])
        b = np.array([1, 1, 0, 0])
        assert sim.hamming_similarity(a, b) == pytest.approx(0.5)

    def test_batch_shapes(self):
        a = np.zeros((3, 8), dtype=int)
        b = np.ones((2, 8), dtype=int)
        assert sim.hamming_distance(a, b).shape == (3, 2)
        assert np.all(sim.hamming_distance(a, b) == 8)

    def test_relation_between_dot_and_hamming_for_bipolar(self):
        # For bipolar vectors: dot = D - 2 * hamming_distance.
        a = random_bipolar_hypervectors(1, 300, rng=0)[0]
        b = random_bipolar_hypervectors(1, 300, rng=1)[0]
        dot = sim.dot_similarity(a, b)
        dist = sim.hamming_distance(a, b)
        assert dot == 300 - 2 * dist

    def test_binary_dot_counts_common_ones(self):
        a_bipolar = random_bipolar_hypervectors(1, 100, rng=2)[0]
        b_bipolar = random_bipolar_hypervectors(1, 100, rng=3)[0]
        a, b = to_binary(a_bipolar), to_binary(b_bipolar)
        expected = int(np.sum((a == 1) & (b == 1)))
        assert sim.dot_similarity(a, b) == expected

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            sim.hamming_distance(np.zeros(3), np.zeros(4))


class TestPairwiseAndTop1:
    def test_pairwise_dot_symmetric(self):
        rng = np.random.default_rng(2)
        vectors = rng.normal(size=(5, 12))
        matrix = sim.pairwise_dot(vectors)
        assert matrix.shape == (5, 5)
        assert np.allclose(matrix, matrix.T)

    def test_pairwise_dot_requires_2d(self):
        with pytest.raises(ValueError):
            sim.pairwise_dot(np.ones(3))

    def test_top1_vector(self):
        assert sim.top1(np.array([0.1, 0.9, 0.3])) == 1

    def test_top1_matrix(self):
        scores = np.array([[1.0, 2.0], [5.0, 0.0]])
        assert np.array_equal(sim.top1(scores), [1, 0])

    def test_top1_tie_prefers_lowest_index(self):
        assert sim.top1(np.array([3.0, 3.0, 1.0])) == 0

    def test_top1_rejects_3d(self):
        with pytest.raises(ValueError):
            sim.top1(np.zeros((2, 2, 2)))
