"""Unit tests for repro.imc.adc (ADC / DAC precision modelling)."""

import numpy as np
import pytest

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.imc.adc import ADCConfig, adc_energy_scale, evaluate_adc_sweep
from repro.imc.array import IMCArrayConfig


class TestADCConfig:
    def test_defaults(self):
        config = ADCConfig()
        assert config.output_bits == 8
        assert config.output_levels == 256
        assert config.input_bits is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"output_bits": 0},
            {"input_bits": 0},
            {"full_scale": 0.0},
            {"full_scale": -1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ADCConfig(**kwargs)

    def test_ideal_levels_and_lsb_are_none(self):
        config = ADCConfig(output_bits=None)
        assert config.output_levels is None
        assert config.lsb is None

    def test_lsb_unsigned(self):
        config = ADCConfig(output_bits=3, full_scale=7.0)
        assert config.lsb == pytest.approx(1.0)

    def test_lsb_signed_doubles_span(self):
        config = ADCConfig(output_bits=3, full_scale=7.0, signed=True)
        assert config.lsb == pytest.approx(2.0)


class TestOutputQuantization:
    def test_ideal_passthrough(self):
        config = ADCConfig(output_bits=None)
        sums = np.array([0.3, 5.7, 100.2])
        assert np.array_equal(config.quantize_outputs(sums), sums)

    def test_values_snap_to_codes(self):
        config = ADCConfig(output_bits=3, full_scale=7.0)
        quantized = config.quantize_outputs(np.array([0.4, 3.6, 6.9]))
        assert np.allclose(quantized, [0.0, 4.0, 7.0])

    def test_clipping_at_full_scale(self):
        config = ADCConfig(output_bits=4, full_scale=10.0)
        quantized = config.quantize_outputs(np.array([-5.0, 25.0]))
        assert quantized[0] == pytest.approx(0.0)
        assert quantized[1] == pytest.approx(10.0)

    def test_signed_range(self):
        config = ADCConfig(output_bits=4, full_scale=10.0, signed=True)
        quantized = config.quantize_outputs(np.array([-12.0, -5.0, 5.0]))
        assert quantized[0] == pytest.approx(-10.0)
        assert -10.0 <= quantized[1] <= 0.0
        assert 0.0 <= quantized[2] <= 10.0

    def test_high_resolution_is_nearly_exact(self):
        config = ADCConfig(output_bits=14, full_scale=128.0)
        sums = np.random.default_rng(0).uniform(0, 128, size=50)
        assert np.allclose(config.quantize_outputs(sums), sums, atol=0.02)

    def test_quantization_error_bounded_by_half_lsb(self):
        config = ADCConfig(output_bits=5, full_scale=100.0)
        sums = np.random.default_rng(1).uniform(0, 100, size=200)
        error = np.abs(config.quantize_outputs(sums) - sums)
        assert error.max() <= config.lsb / 2 + 1e-9


class TestInputQuantization:
    def test_ideal_passthrough(self):
        config = ADCConfig(input_bits=None)
        inputs = np.array([0.1, 0.5, 0.9])
        assert np.array_equal(config.quantize_inputs(inputs), inputs)

    def test_one_bit_dac_is_binary(self):
        config = ADCConfig(input_bits=1)
        quantized = config.quantize_inputs(np.array([0.2, 0.6, 1.0]))
        assert set(np.unique(quantized)) <= {0.0, 1.0}

    def test_inputs_clipped_to_unit_interval(self):
        config = ADCConfig(input_bits=4)
        quantized = config.quantize_inputs(np.array([-0.5, 1.5]))
        assert quantized[0] == 0.0
        assert quantized[1] == 1.0

    def test_more_bits_reduce_error(self):
        inputs = np.random.default_rng(2).random(500)
        coarse = ADCConfig(input_bits=2).quantize_inputs(inputs)
        fine = ADCConfig(input_bits=8).quantize_inputs(inputs)
        assert np.abs(fine - inputs).mean() < np.abs(coarse - inputs).mean()


class TestADCEnergyScale:
    def test_reference_is_unity(self):
        assert adc_energy_scale(8) == pytest.approx(1.0)
        assert adc_energy_scale(None) == pytest.approx(1.0)

    def test_doubling_per_bit(self):
        assert adc_energy_scale(10) == pytest.approx(4.0)
        assert adc_energy_scale(6) == pytest.approx(0.25)

    def test_invalid(self):
        with pytest.raises(ValueError):
            adc_energy_scale(0)
        with pytest.raises(ValueError):
            adc_energy_scale(8, reference_bits=0)


class TestEvaluateADCSweep:
    def test_accuracy_improves_with_resolution(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=64, columns=32, epochs=4, seed=0),
            rng=0,
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        results = evaluate_adc_sweep(
            model,
            tiny_dataset.test_features,
            tiny_dataset.test_labels,
            bit_settings=(2, 4, 8, None),
            array_config=IMCArrayConfig(64, 64),
        )
        # Ideal readout equals the software model's accuracy; low resolution
        # can only be worse or equal.
        ideal = results[None]
        software = model.score(tiny_dataset.test_features, tiny_dataset.test_labels)
        assert ideal == pytest.approx(software)
        assert results[2] <= results[8] + 0.05
        assert results[8] >= ideal - 0.05
