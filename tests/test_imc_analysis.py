"""Unit tests for repro.imc.analysis (Table II / Fig. 7 reports)."""

import pytest

from repro.imc.analysis import (
    energy_comparison,
    full_mapping_report,
    improvement_factors,
    table2_rows,
)
from repro.imc.array import IMCArrayConfig


@pytest.fixture(scope="module")
def mnist_reports():
    """Table II-(a): MNIST/FMNIST column of the paper."""
    return full_mapping_report(
        num_features=784,
        num_classes=10,
        baseline_dimension=10240,
        memhd_dimension=128,
        memhd_columns=128,
        partition_counts=(5, 10),
    )


@pytest.fixture(scope="module")
def isolet_reports():
    """Table II-(b): ISOLET column of the paper."""
    return full_mapping_report(
        num_features=617,
        num_classes=26,
        baseline_dimension=10240,
        memhd_dimension=512,
        memhd_columns=128,
        partition_counts=(2, 4),
    )


class TestTable2MNIST:
    def test_report_count_and_order(self, mnist_reports):
        methods = [report.method for report in mnist_reports]
        assert methods == ["Basic", "Partitioning (P=5)", "Partitioning (P=10)", "MEMHD"]

    def test_am_structures(self, mnist_reports):
        structures = [report.am_structure for report in mnist_reports]
        assert structures == ["10240x10", "2048x50", "1024x100", "128x128"]

    def test_total_cycles(self, mnist_reports):
        totals = [report.total_cycles for report in mnist_reports]
        assert totals == [640, 640, 640, 8]

    def test_total_arrays(self, mnist_reports):
        totals = [report.total_arrays for report in mnist_reports]
        assert totals == [640, 576, 568, 8]

    def test_utilization(self, mnist_reports):
        utils = [report.am_utilization for report in mnist_reports]
        assert utils[0] == pytest.approx(0.0781, abs=1e-4)
        assert utils[1] == pytest.approx(0.3906, abs=1e-4)
        assert utils[2] == pytest.approx(0.7813, abs=1e-4)
        assert utils[3] == pytest.approx(1.0)

    def test_improvement_factors(self, mnist_reports):
        factors = improvement_factors(mnist_reports)
        assert factors["cycle_reduction"] == pytest.approx(80.0)
        assert factors["array_reduction"] == pytest.approx(80.0)
        assert factors["utilization_gain"] == pytest.approx(1.0 - 100 / 128)


class TestTable2ISOLET:
    def test_total_cycles(self, isolet_reports):
        totals = [report.total_cycles for report in isolet_reports]
        assert totals == [480, 480, 480, 24]

    def test_total_arrays(self, isolet_reports):
        totals = [report.total_arrays for report in isolet_reports]
        assert totals == [480, 440, 420, 24]

    def test_improvement_factors(self, isolet_reports):
        factors = improvement_factors(isolet_reports)
        assert factors["cycle_reduction"] == pytest.approx(20.0)
        assert factors["array_reduction"] == pytest.approx(20.0)

    def test_utilization(self, isolet_reports):
        utils = [report.am_utilization for report in isolet_reports]
        assert utils[0] == pytest.approx(26 / 128)
        assert utils[-1] == pytest.approx(1.0)


class TestReportHelpers:
    def test_table2_rows_format(self, mnist_reports):
        rows = table2_rows(mnist_reports)
        assert len(rows) == 4
        assert rows[0]["am_utilization"] == "7.81%"
        assert rows[-1]["am_utilization"] == "100.00%"
        assert rows[-1]["total_cycles"] == 8

    def test_improvement_needs_two_reports(self, mnist_reports):
        with pytest.raises(ValueError):
            improvement_factors(mnist_reports[:1])

    def test_custom_array_geometry(self):
        reports = full_mapping_report(
            num_features=784,
            num_classes=10,
            baseline_dimension=10240,
            memhd_dimension=256,
            memhd_columns=256,
            partition_counts=(5,),
            array=IMCArrayConfig(256, 256),
        )
        memhd = reports[-1]
        assert memhd.am_cycles == 1
        assert memhd.am_arrays == 1


class TestEnergyComparison:
    def _fig7_specs(self):
        """The iso-accuracy FMNIST configurations compared in Fig. 7."""
        return [
            {"name": "BasicHDC 10240x10", "dimension": 10240, "num_vectors": 10},
            {
                "name": "BasicHDC 1024x100 (P=10)",
                "dimension": 1024,
                "num_vectors": 100,
                "partitions": 10,
            },
            {"name": "LeHDC 400x10", "dimension": 400, "num_vectors": 10},
            {"name": "MEMHD 128x128", "dimension": 128, "num_vectors": 128},
        ]

    def test_entries_and_normalization(self):
        entries = energy_comparison(self._fig7_specs())
        assert len(entries) == 4
        assert max(entry.normalized_energy for entry in entries) == pytest.approx(100.0)
        assert max(entry.normalized_cycles for entry in entries) == pytest.approx(100.0)

    def test_memhd_is_single_cycle_single_array(self):
        entries = {entry.model: entry for entry in energy_comparison(self._fig7_specs())}
        memhd = entries["MEMHD 128x128"]
        assert memhd.cycles == 1
        assert memhd.arrays == 1

    def test_partitioning_preserves_energy(self):
        entries = {entry.model: entry for entry in energy_comparison(self._fig7_specs())}
        assert entries["BasicHDC 10240x10"].energy_pj == pytest.approx(
            entries["BasicHDC 1024x100 (P=10)"].energy_pj
        )

    def test_paper_efficiency_ratios(self):
        """MEMHD is 80x more efficient than BasicHDC and 4x than LeHDC."""
        entries = {entry.model: entry for entry in energy_comparison(self._fig7_specs())}
        memhd = entries["MEMHD 128x128"]
        assert entries["BasicHDC 10240x10"].energy_pj / memhd.energy_pj == pytest.approx(80.0)
        assert entries["LeHDC 400x10"].energy_pj / memhd.energy_pj == pytest.approx(4.0)

    def test_as_dict(self):
        entry = energy_comparison(self._fig7_specs())[0]
        data = entry.as_dict()
        assert set(data) >= {"model", "arrays", "cycles", "normalized_energy"}
