"""Unit tests for repro.imc.array."""

import numpy as np
import pytest

from repro.imc.array import IMCArray, IMCArrayConfig


class TestIMCArrayConfig:
    def test_defaults_match_paper(self):
        config = IMCArrayConfig()
        assert config.rows == 128
        assert config.cols == 128
        assert config.cells == 128 * 128
        assert config.label == "128x128"

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            IMCArrayConfig(0, 128)
        with pytest.raises(ValueError):
            IMCArrayConfig(128, -1)

    def test_frozen(self):
        config = IMCArrayConfig()
        with pytest.raises(Exception):
            config.rows = 64


class TestProgramming:
    def test_program_full_array(self):
        array = IMCArray(IMCArrayConfig(4, 4))
        matrix = np.eye(4, dtype=int)
        array.program(matrix)
        assert np.array_equal(array.cells, matrix)
        assert array.used_rows == 4
        assert array.used_cols == 4

    def test_program_partial_with_offset(self):
        array = IMCArray(IMCArrayConfig(8, 8))
        array.program(np.ones((2, 3), dtype=int), row_offset=2, col_offset=4)
        assert array.cells[:2].sum() == 0
        assert array.cells[2:4, 4:7].sum() == 6
        assert array.used_rows == 2
        assert array.used_cols == 3

    def test_program_counts_writes(self):
        array = IMCArray(IMCArrayConfig(8, 8))
        array.program(np.zeros((3, 5), dtype=int))
        assert array.writes == 15

    def test_non_binary_matrix_rejected(self):
        array = IMCArray(IMCArrayConfig(4, 4))
        with pytest.raises(ValueError):
            array.program(np.full((2, 2), 2))

    def test_out_of_bounds_rejected(self):
        array = IMCArray(IMCArrayConfig(4, 4))
        with pytest.raises(ValueError):
            array.program(np.ones((5, 2), dtype=int))
        with pytest.raises(ValueError):
            array.program(np.ones((2, 2), dtype=int), row_offset=3)
        with pytest.raises(ValueError):
            array.program(np.ones((2, 2), dtype=int), col_offset=-1)

    def test_1d_matrix_rejected(self):
        array = IMCArray(IMCArrayConfig(4, 4))
        with pytest.raises(ValueError):
            array.program(np.ones(4, dtype=int))


class TestMVM:
    def test_binary_mvm_counts_matching_ones(self):
        array = IMCArray(IMCArrayConfig(4, 3))
        weights = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0], [0, 0, 1]])
        array.program(weights)
        inputs = np.array([1, 1, 0, 1])
        expected = inputs @ weights
        assert np.array_equal(array.mvm(inputs), expected)

    def test_real_valued_inputs(self):
        array = IMCArray(IMCArrayConfig(3, 2))
        weights = np.array([[1, 0], [1, 1], [0, 1]])
        array.program(weights)
        inputs = np.array([0.5, 0.25, 2.0])
        assert np.allclose(array.mvm(inputs), inputs @ weights)

    def test_mvm_counts_activations(self):
        array = IMCArray(IMCArrayConfig(4, 4))
        array.program(np.ones((4, 4), dtype=int))
        array.mvm(np.ones(4))
        array.mvm(np.ones(4))
        assert array.activations == 2

    def test_mvm_batch(self):
        array = IMCArray(IMCArrayConfig(4, 3))
        weights = np.random.default_rng(0).integers(0, 2, size=(4, 3))
        array.program(weights)
        inputs = np.random.default_rng(1).integers(0, 2, size=(5, 4)).astype(float)
        assert np.allclose(array.mvm_batch(inputs), inputs @ weights)
        assert array.activations == 5

    def test_wrong_input_length_rejected(self):
        array = IMCArray(IMCArrayConfig(4, 4))
        with pytest.raises(ValueError):
            array.mvm(np.ones(5))
        with pytest.raises(ValueError):
            array.mvm_batch(np.ones((2, 5)))

    def test_unprogrammed_cells_contribute_zero(self):
        array = IMCArray(IMCArrayConfig(4, 4))
        array.program(np.ones((2, 2), dtype=int))
        result = array.mvm(np.ones(4))
        assert np.array_equal(result, [2, 2, 0, 0])


class TestUtilization:
    def test_column_utilization(self):
        array = IMCArray(IMCArrayConfig(8, 10))
        array.program(np.ones((8, 4), dtype=int))
        assert array.column_utilization == pytest.approx(0.4)

    def test_cell_utilization(self):
        array = IMCArray(IMCArrayConfig(4, 4))
        array.program(np.ones((2, 2), dtype=int))
        assert array.cell_utilization == pytest.approx(4 / 16)

    def test_reset_counters(self):
        array = IMCArray(IMCArrayConfig(4, 4))
        array.program(np.ones((4, 4), dtype=int))
        array.mvm(np.ones(4))
        array.reset_counters()
        assert array.activations == 0
        assert array.writes == 0
        # Cells themselves are not erased.
        assert array.cells.sum() == 16
