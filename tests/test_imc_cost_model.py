"""Unit tests for repro.imc.cost_model."""

import pytest

from repro.imc.array import IMCArrayConfig
from repro.imc.cost_model import CostModel, IMCCostParameters
from repro.imc.mapping import (
    analyze_am_mapping,
    basic_am_structure,
    memhd_am_structure,
    partitioned_am_structure,
)

ARRAY = IMCArrayConfig(128, 128)


class TestIMCCostParameters:
    def test_defaults_positive(self):
        params = IMCCostParameters()
        assert params.mvm_energy_pj > 0
        assert params.cycle_latency_ns > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mvm_energy_pj": 0},
            {"cycle_latency_ns": -1},
            {"write_energy_pj_per_cell": 0},
            {"leakage_power_uw": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            IMCCostParameters(**kwargs)

    def test_energy_scales_with_cell_count(self):
        params = IMCCostParameters()
        full = params.scaled_mvm_energy(IMCArrayConfig(128, 128))
        quarter = params.scaled_mvm_energy(IMCArrayConfig(64, 64))
        assert full == pytest.approx(4 * quarter)

    def test_latency_scales_with_rows(self):
        params = IMCCostParameters()
        assert params.scaled_latency(IMCArrayConfig(256, 128)) == pytest.approx(
            2 * params.cycle_latency_ns
        )


class TestCostModel:
    def test_energy_proportional_to_cycles(self):
        model = CostModel()
        basic = model.inference_cost(
            analyze_am_mapping(basic_am_structure(10240, 10), ARRAY)
        )
        memhd = model.inference_cost(
            analyze_am_mapping(memhd_am_structure(128, 128), ARRAY)
        )
        assert basic.energy_pj / memhd.energy_pj == pytest.approx(80.0)
        assert basic.latency_ns / memhd.latency_ns == pytest.approx(80.0)

    def test_partitioning_keeps_energy_constant(self):
        """The Fig. 7 observation: partitioning trades arrays for cycles."""
        model = CostModel()
        costs = [
            model.inference_cost(
                analyze_am_mapping(partitioned_am_structure(10240, 10, p), ARRAY)
            )
            for p in (1, 5, 10)
        ]
        energies = {round(cost.energy_pj, 6) for cost in costs}
        assert len(energies) == 1
        arrays = [cost.arrays for cost in costs]
        assert arrays[0] > arrays[1] > arrays[2]

    def test_programming_energy_scales_with_arrays(self):
        model = CostModel()
        basic = model.inference_cost(
            analyze_am_mapping(basic_am_structure(10240, 10), ARRAY)
        )
        memhd = model.inference_cost(
            analyze_am_mapping(memhd_am_structure(128, 128), ARRAY)
        )
        assert basic.programming_energy_pj == pytest.approx(
            80 * memhd.programming_energy_pj
        )

    def test_total_inference_cost_sums_em_and_am(self):
        from repro.imc.mapping import analyze_em_mapping

        model = CostModel()
        em = analyze_em_mapping(784, 128, ARRAY)
        am = analyze_am_mapping(memhd_am_structure(128, 128), ARRAY)
        total = model.total_inference_cost(em, am)
        assert total.cycles == em.cycles + am.cycles == 8
        assert total.energy_pj == pytest.approx(
            model.inference_cost(em).energy_pj + model.inference_cost(am).energy_pj
        )

    def test_as_dict(self):
        model = CostModel()
        cost = model.inference_cost(
            analyze_am_mapping(memhd_am_structure(128, 128), ARRAY)
        )
        data = cost.as_dict()
        assert data["cycles"] == 1
        assert data["arrays"] == 1
        assert data["energy_pj"] > 0

    def test_custom_parameters_respected(self):
        params = IMCCostParameters(mvm_energy_pj=2.0, cycle_latency_ns=10.0)
        model = CostModel(parameters=params)
        cost = model.inference_cost(
            analyze_am_mapping(memhd_am_structure(128, 128), ARRAY)
        )
        assert cost.energy_pj == pytest.approx(2.0)
        assert cost.latency_ns == pytest.approx(10.0)
