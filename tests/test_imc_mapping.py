"""Unit tests for repro.imc.mapping (analytical Table II model + tiling)."""

import numpy as np
import pytest

from repro.imc.array import IMCArrayConfig
from repro.imc.mapping import (
    AMStructure,
    analyze_am_mapping,
    analyze_em_mapping,
    basic_am_structure,
    memhd_am_structure,
    partitioned_am_structure,
    tile_matrix,
)

ARRAY = IMCArrayConfig(128, 128)


class TestAMStructures:
    def test_basic_structure(self):
        structure = basic_am_structure(10240, 10)
        assert structure.dimension == 10240
        assert structure.num_vectors == 10
        assert structure.partitions == 1
        assert structure.structure_label == "10240x10"

    def test_partitioned_structure(self):
        structure = partitioned_am_structure(10240, 10, 5)
        assert structure.dimension == 2048
        assert structure.num_vectors == 50
        assert structure.original_dimension == 10240
        assert structure.structure_label == "2048x50"

    def test_partition_must_divide_dimension(self):
        with pytest.raises(ValueError):
            partitioned_am_structure(10240, 10, 3)

    def test_memhd_structure(self):
        structure = memhd_am_structure(128, 128)
        assert structure.structure_label == "128x128"
        assert structure.label == "MEMHD"

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            AMStructure(0, 10)
        with pytest.raises(ValueError):
            AMStructure(10, 0)
        with pytest.raises(ValueError):
            AMStructure(10, 10, partitions=0)
        with pytest.raises(ValueError):
            partitioned_am_structure(128, 10, 0)


class TestTable2MNISTNumbers:
    """The exact Table II-(a) numbers for MNIST/FMNIST on 128x128 arrays."""

    def test_basic_mapping(self):
        analysis = analyze_am_mapping(basic_am_structure(10240, 10), ARRAY)
        assert analysis.cycles == 80
        assert analysis.arrays == 80
        assert analysis.utilization == pytest.approx(10 / 128)

    def test_partition_5(self):
        analysis = analyze_am_mapping(partitioned_am_structure(10240, 10, 5), ARRAY)
        assert analysis.cycles == 80
        assert analysis.arrays == 16
        assert analysis.utilization == pytest.approx(50 / 128)

    def test_partition_10(self):
        analysis = analyze_am_mapping(partitioned_am_structure(10240, 10, 10), ARRAY)
        assert analysis.cycles == 80
        assert analysis.arrays == 8
        assert analysis.utilization == pytest.approx(100 / 128)

    def test_memhd(self):
        analysis = analyze_am_mapping(memhd_am_structure(128, 128), ARRAY)
        assert analysis.cycles == 1
        assert analysis.arrays == 1
        assert analysis.utilization == pytest.approx(1.0)

    def test_em_basic(self):
        analysis = analyze_em_mapping(784, 10240, ARRAY)
        assert analysis.cycles == 560
        assert analysis.arrays == 560

    def test_em_memhd(self):
        analysis = analyze_em_mapping(784, 128, ARRAY)
        assert analysis.cycles == 7
        assert analysis.arrays == 7


class TestTable2ISOLETNumbers:
    """The exact Table II-(b) numbers for ISOLET on 128x128 arrays."""

    def test_basic_mapping(self):
        analysis = analyze_am_mapping(basic_am_structure(10240, 26), ARRAY)
        assert analysis.cycles == 80
        assert analysis.arrays == 80
        assert analysis.utilization == pytest.approx(26 / 128)

    def test_partition_2(self):
        analysis = analyze_am_mapping(partitioned_am_structure(10240, 26, 2), ARRAY)
        assert analysis.cycles == 80
        assert analysis.arrays == 40
        assert analysis.utilization == pytest.approx(52 / 128)

    def test_partition_4(self):
        analysis = analyze_am_mapping(partitioned_am_structure(10240, 26, 4), ARRAY)
        assert analysis.cycles == 80
        assert analysis.arrays == 20
        assert analysis.utilization == pytest.approx(104 / 128)

    def test_memhd_512x128(self):
        analysis = analyze_am_mapping(memhd_am_structure(512, 128), ARRAY)
        assert analysis.cycles == 4
        assert analysis.arrays == 4
        assert analysis.utilization == pytest.approx(1.0)

    def test_em_basic(self):
        analysis = analyze_em_mapping(617, 10240, ARRAY)
        assert analysis.cycles == 400

    def test_em_memhd(self):
        analysis = analyze_em_mapping(617, 512, ARRAY)
        assert analysis.cycles == 20


class TestAnalyticalEdgeCases:
    def test_more_columns_than_array(self):
        analysis = analyze_am_mapping(AMStructure(128, 300, label="wide"), ARRAY)
        assert analysis.col_tiles == 3
        assert analysis.arrays == 3
        assert analysis.cycles == 3
        assert analysis.utilization == pytest.approx(300 / 384)

    def test_small_array_geometry(self):
        small = IMCArrayConfig(64, 32)
        analysis = analyze_am_mapping(memhd_am_structure(128, 64), small)
        assert analysis.row_tiles == 2
        assert analysis.col_tiles == 2
        assert analysis.arrays == 4
        assert analysis.cycles == 4

    def test_em_invalid_inputs(self):
        with pytest.raises(ValueError):
            analyze_em_mapping(0, 128, ARRAY)
        with pytest.raises(ValueError):
            analyze_em_mapping(128, 0, ARRAY)

    def test_as_dict(self):
        analysis = analyze_am_mapping(memhd_am_structure(128, 128), ARRAY)
        data = analysis.as_dict()
        assert data["cycles"] == 1
        assert data["label"] == "MEMHD"


class TestTiledMatrix:
    def test_tile_counts(self):
        matrix = np.random.default_rng(0).integers(0, 2, size=(300, 70))
        tiled = tile_matrix(matrix, IMCArrayConfig(128, 64))
        assert tiled.num_arrays == 3 * 2
        assert tiled.cycles_per_mvm == 6

    def test_stored_matrix_roundtrip(self):
        matrix = np.random.default_rng(1).integers(0, 2, size=(100, 50))
        tiled = tile_matrix(matrix, IMCArrayConfig(32, 32))
        assert np.array_equal(tiled.stored_matrix(), matrix)

    def test_mvm_matches_direct_product(self):
        matrix = np.random.default_rng(2).integers(0, 2, size=(200, 40))
        tiled = tile_matrix(matrix, IMCArrayConfig(64, 16))
        inputs = np.random.default_rng(3).integers(0, 2, size=200).astype(float)
        assert np.allclose(tiled.mvm(inputs), inputs @ matrix)

    def test_mvm_batch_matches_direct_product(self):
        matrix = np.random.default_rng(4).integers(0, 2, size=(90, 30))
        tiled = tile_matrix(matrix, IMCArrayConfig(32, 32))
        inputs = np.random.default_rng(5).random((7, 90))
        assert np.allclose(tiled.mvm_batch(inputs), inputs @ matrix)

    def test_cycles_executed_accumulate(self):
        matrix = np.random.default_rng(6).integers(0, 2, size=(60, 60))
        tiled = tile_matrix(matrix, IMCArrayConfig(32, 32))
        tiled.mvm(np.zeros(60))
        assert tiled.cycles_executed == tiled.cycles_per_mvm
        tiled.mvm_batch(np.zeros((3, 60)))
        assert tiled.cycles_executed == tiled.cycles_per_mvm * 4

    def test_column_utilization(self):
        matrix = np.zeros((10, 40), dtype=int)
        tiled = tile_matrix(matrix, IMCArrayConfig(16, 32))
        assert tiled.column_utilization() == pytest.approx(40 / 64)

    def test_wrong_input_length_raises(self):
        tiled = tile_matrix(np.zeros((8, 8), dtype=int), IMCArrayConfig(8, 8))
        with pytest.raises(ValueError):
            tiled.mvm(np.zeros(9))
        with pytest.raises(ValueError):
            tiled.mvm_batch(np.zeros((2, 9)))

    def test_non_binary_matrix_rejected(self):
        with pytest.raises(ValueError):
            tile_matrix(np.full((4, 4), 3), IMCArrayConfig(8, 8))

    def test_1d_matrix_rejected(self):
        with pytest.raises(ValueError):
            tile_matrix(np.zeros(4), IMCArrayConfig(8, 8))

    def test_analytical_and_physical_models_agree(self):
        """The tiled AM's cycle count equals the analytical arrays count."""
        dimension, columns = 200, 150
        matrix = np.random.default_rng(7).integers(0, 2, size=(dimension, columns))
        tiled = tile_matrix(matrix, ARRAY)
        analysis = analyze_am_mapping(
            AMStructure(dimension, columns, label="check"), ARRAY
        )
        assert tiled.num_arrays == analysis.arrays
        assert tiled.cycles_per_mvm == analysis.cycles
        assert tiled.column_utilization() == pytest.approx(analysis.utilization)
