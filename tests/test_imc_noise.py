"""Unit tests for repro.imc.noise."""

import numpy as np
import pytest

from repro.imc.noise import NoiseModel, apply_stuck_at_faults, flip_bits


class TestFlipBits:
    def test_zero_probability_is_identity(self):
        matrix = np.random.default_rng(0).integers(0, 2, size=(20, 20))
        assert np.array_equal(flip_bits(matrix, 0.0, rng=1), matrix)

    def test_probability_one_inverts_everything(self):
        matrix = np.random.default_rng(1).integers(0, 2, size=(20, 20))
        assert np.array_equal(flip_bits(matrix, 1.0, rng=2), 1 - matrix)

    def test_flip_rate_close_to_probability(self):
        matrix = np.zeros((200, 200), dtype=np.int8)
        flipped = flip_bits(matrix, 0.1, rng=3)
        assert 0.08 < flipped.mean() < 0.12

    def test_output_stays_binary(self):
        matrix = np.random.default_rng(2).integers(0, 2, size=(30, 30))
        flipped = flip_bits(matrix, 0.5, rng=4)
        assert set(np.unique(flipped)) <= {0, 1}

    def test_deterministic_with_seed(self):
        matrix = np.random.default_rng(3).integers(0, 2, size=(10, 10))
        assert np.array_equal(flip_bits(matrix, 0.3, rng=7), flip_bits(matrix, 0.3, rng=7))

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            flip_bits(np.zeros((2, 2), dtype=int), 1.5)

    def test_non_binary_input_rejected(self):
        with pytest.raises(ValueError):
            flip_bits(np.full((2, 2), 2), 0.1)

    def test_input_not_mutated(self):
        matrix = np.zeros((10, 10), dtype=np.int8)
        flip_bits(matrix, 0.9, rng=5)
        assert matrix.sum() == 0


class TestStuckAtFaults:
    def test_stuck_at_one_only(self):
        matrix = np.zeros((100, 100), dtype=np.int8)
        faulty = apply_stuck_at_faults(matrix, 0.0, 0.2, rng=0)
        assert 0.15 < faulty.mean() < 0.25

    def test_stuck_at_zero_only(self):
        matrix = np.ones((100, 100), dtype=np.int8)
        faulty = apply_stuck_at_faults(matrix, 0.2, 0.0, rng=1)
        assert 0.75 < faulty.mean() < 0.85

    def test_no_faults_is_identity(self):
        matrix = np.random.default_rng(2).integers(0, 2, size=(10, 10))
        assert np.array_equal(apply_stuck_at_faults(matrix, 0.0, 0.0, rng=3), matrix)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            apply_stuck_at_faults(np.zeros((2, 2), dtype=int), 0.6, 0.6)
        with pytest.raises(ValueError):
            apply_stuck_at_faults(np.zeros((2, 2), dtype=int), -0.1, 0.0)

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            apply_stuck_at_faults(np.full((2, 2), 5), 0.1, 0.1)


class TestNoiseModel:
    def test_defaults_are_ideal(self):
        assert NoiseModel().is_ideal

    def test_non_ideal_detection(self):
        assert not NoiseModel(bit_flip_probability=0.01).is_ideal
        assert not NoiseModel(read_noise_sigma=1.0).is_ideal
        assert not NoiseModel(stuck_at_one_probability=0.05).is_ideal

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bit_flip_probability": -0.1},
            {"bit_flip_probability": 1.1},
            {"read_noise_sigma": -1.0},
            {"stuck_at_zero_probability": 0.7, "stuck_at_one_probability": 0.6},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            NoiseModel(**kwargs)

    def test_corrupt_memory_ideal_is_copy(self):
        matrix = np.random.default_rng(0).integers(0, 2, size=(10, 10))
        result = NoiseModel().corrupt_memory(matrix, rng=0)
        assert np.array_equal(result, matrix)

    def test_corrupt_memory_applies_flips(self):
        matrix = np.zeros((50, 50), dtype=np.int8)
        corrupted = NoiseModel(bit_flip_probability=0.2).corrupt_memory(matrix, rng=1)
        assert corrupted.sum() > 0

    def test_corrupt_readout_ideal_passthrough(self):
        sums = np.arange(10.0)
        assert np.array_equal(NoiseModel().corrupt_readout(sums, rng=0), sums)

    def test_corrupt_readout_adds_noise(self):
        sums = np.zeros(1000)
        noisy = NoiseModel(read_noise_sigma=2.0).corrupt_readout(sums, rng=2)
        assert 1.5 < noisy.std() < 2.5

    def test_combined_corruption_deterministic(self):
        matrix = np.random.default_rng(3).integers(0, 2, size=(20, 20))
        model = NoiseModel(bit_flip_probability=0.1, stuck_at_one_probability=0.05)
        a = model.corrupt_memory(matrix, rng=9)
        b = model.corrupt_memory(matrix, rng=9)
        assert np.array_equal(a, b)
