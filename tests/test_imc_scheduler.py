"""Unit tests for repro.imc.scheduler."""

import pytest

from repro.imc.array import IMCArrayConfig
from repro.imc.mapping import (
    analyze_am_mapping,
    analyze_em_mapping,
    basic_am_structure,
    memhd_am_structure,
)
from repro.imc.scheduler import AcceleratorScheduler

ARRAY = IMCArrayConfig(128, 128)


def mnist_basic_mappings():
    """EM and AM mappings of the BasicHDC 10240D MNIST configuration."""
    em = analyze_em_mapping(784, 10240, ARRAY)
    am = analyze_am_mapping(basic_am_structure(10240, 10), ARRAY)
    return em, am


def mnist_memhd_mappings():
    """EM and AM mappings of the MEMHD 128x128 MNIST configuration."""
    em = analyze_em_mapping(784, 128, ARRAY)
    am = analyze_am_mapping(memhd_am_structure(128, 128), ARRAY)
    return em, am


class TestConstruction:
    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            AcceleratorScheduler(0)

    def test_stage_cycles(self):
        scheduler = AcceleratorScheduler(4, ARRAY)
        assert scheduler.stage_cycles(0) == 0
        assert scheduler.stage_cycles(1) == 1
        assert scheduler.stage_cycles(4) == 1
        assert scheduler.stage_cycles(5) == 2
        assert scheduler.stage_cycles(9) == 3

    def test_stage_cycles_negative(self):
        with pytest.raises(ValueError):
            AcceleratorScheduler(2, ARRAY).stage_cycles(-1)


class TestSchedule:
    def test_single_array_matches_table2_totals(self):
        """A pool of one array reproduces the Table II sequential cycles."""
        em, am = mnist_basic_mappings()
        report = AcceleratorScheduler(1, ARRAY).schedule(em, am)
        assert report.latency_cycles == 640
        em2, am2 = mnist_memhd_mappings()
        report2 = AcceleratorScheduler(1, ARRAY).schedule(em2, am2)
        assert report2.latency_cycles == 8

    def test_more_arrays_reduce_latency(self):
        em, am = mnist_basic_mappings()
        latencies = [
            AcceleratorScheduler(pool, ARRAY).schedule(em, am).latency_cycles
            for pool in (1, 8, 64, 640)
        ]
        assert latencies == sorted(latencies, reverse=True)
        # With one array per tile only the stage dependency remains.
        assert latencies[-1] == 2

    def test_memhd_needs_a_small_pool_for_minimum_latency(self):
        em, am = mnist_memhd_mappings()
        report = AcceleratorScheduler(7, ARRAY).schedule(em, am)
        assert report.latency_cycles == 2  # 7 EM tiles in one go + 1 AM cycle

    def test_throughput_limited_by_bottleneck_stage(self):
        em, am = mnist_memhd_mappings()
        report = AcceleratorScheduler(1, ARRAY).schedule(em, am)
        # EM needs 7 cycles, AM 1 -> bottleneck is encoding.
        assert report.bottleneck == "encoding"
        assert report.throughput_per_kcycle == pytest.approx(1000.0 / 7)

    def test_energy_independent_of_pool_size(self):
        em, am = mnist_basic_mappings()
        small = AcceleratorScheduler(1, ARRAY).schedule(em, am)
        large = AcceleratorScheduler(64, ARRAY).schedule(em, am)
        assert small.energy_pj_per_inference == pytest.approx(
            large.energy_pj_per_inference
        )

    def test_memhd_uses_less_energy_than_basic(self):
        basic = AcceleratorScheduler(8, ARRAY).schedule(*mnist_basic_mappings())
        memhd = AcceleratorScheduler(8, ARRAY).schedule(*mnist_memhd_mappings())
        assert memhd.energy_pj_per_inference < basic.energy_pj_per_inference / 50

    def test_as_dict(self):
        report = AcceleratorScheduler(2, ARRAY).schedule(*mnist_memhd_mappings())
        data = report.as_dict()
        assert data["num_arrays"] == 2
        assert data["latency_cycles"] == report.latency_cycles

    def test_schedule_model_convenience(self):
        report = AcceleratorScheduler(4, ARRAY).schedule_model(
            784, 128, memhd_am_structure(128, 128)
        )
        assert report.em_tiles == 7
        assert report.am_tiles == 1


class TestArraysNeededForLatency:
    def test_exact_pool_for_two_cycle_latency(self):
        em, am = mnist_memhd_mappings()
        scheduler = AcceleratorScheduler(1, ARRAY)
        assert scheduler.arrays_needed_for_latency(em, am, target_cycles=2) == 7
        assert scheduler.arrays_needed_for_latency(em, am, target_cycles=8) == 1

    def test_impossible_target_raises(self):
        em, am = mnist_memhd_mappings()
        scheduler = AcceleratorScheduler(1, ARRAY)
        with pytest.raises(ValueError):
            scheduler.arrays_needed_for_latency(em, am, target_cycles=1)
        with pytest.raises(ValueError):
            scheduler.arrays_needed_for_latency(em, am, target_cycles=0)

    def test_basic_mapping_needs_many_arrays_for_low_latency(self):
        em, am = mnist_basic_mappings()
        scheduler = AcceleratorScheduler(1, ARRAY)
        pool = scheduler.arrays_needed_for_latency(em, am, target_cycles=3)
        assert pool >= 280  # 560 EM tiles over 2 cycles needs >= 280 arrays
