"""Unit tests for repro.imc.simulator (functional in-memory inference)."""

import numpy as np
import pytest

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.imc.array import IMCArrayConfig
from repro.imc.noise import NoiseModel
from repro.imc.simulator import InMemoryInference


@pytest.fixture(scope="module")
def engine_and_model(tiny_dataset):
    model = MEMHDModel(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        MEMHDConfig(dimension=64, columns=32, epochs=5, seed=42),
        rng=42,
    )
    model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
    engine = InMemoryInference(model, IMCArrayConfig(32, 32))
    return engine, model


class TestConstruction:
    def test_unfitted_model_rejected(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=32, columns=8),
        )
        with pytest.raises(RuntimeError):
            InMemoryInference(model)

    def test_default_array_is_128x128(self, engine_and_model, tiny_dataset):
        _, model = engine_and_model
        engine = InMemoryInference(model)
        assert engine.array_config.label == "128x128"


class TestBitExactness:
    def test_encoding_matches_software_encoder(self, engine_and_model, tiny_dataset):
        engine, model = engine_and_model
        features = tiny_dataset.test_features[:20]
        assert np.array_equal(engine.encode(features), model.encode_binary(features))

    def test_single_feature_vector_encoding(self, engine_and_model, tiny_dataset):
        engine, model = engine_and_model
        single = engine.encode(tiny_dataset.test_features[0])
        assert single.shape == (64,)
        assert np.array_equal(single, model.encode_binary(tiny_dataset.test_features[0]))

    def test_associative_search_matches_am_scores(self, engine_and_model, tiny_dataset):
        engine, model = engine_and_model
        queries = model.encode_binary(tiny_dataset.test_features[:10]).astype(float)
        expected = model.associative_memory.scores(queries)
        assert np.allclose(engine.associative_search(queries), expected)

    def test_predictions_match_software_model(self, engine_and_model, tiny_dataset):
        engine, model = engine_and_model
        features = tiny_dataset.test_features
        assert np.array_equal(engine.predict(features), model.predict(features))

    def test_matches_software_model_helper(self, engine_and_model, tiny_dataset):
        engine, _ = engine_and_model
        assert engine.matches_software_model(tiny_dataset.test_features[:30])

    def test_match_helper_rejects_noisy_engine(self, engine_and_model, tiny_dataset):
        _, model = engine_and_model
        noisy = InMemoryInference(
            model, IMCArrayConfig(32, 32), noise=NoiseModel(bit_flip_probability=0.05),
            rng=0,
        )
        with pytest.raises(ValueError):
            noisy.matches_software_model(tiny_dataset.test_features[:5])

    def test_different_array_geometries_give_same_predictions(
        self, engine_and_model, tiny_dataset
    ):
        _, model = engine_and_model
        features = tiny_dataset.test_features[:30]
        predictions = [
            InMemoryInference(model, IMCArrayConfig(rows, cols)).predict(features)
            for rows, cols in ((16, 16), (64, 64), (128, 128), (48, 24))
        ]
        for other in predictions[1:]:
            assert np.array_equal(predictions[0], other)


class TestStats:
    def test_stats_match_analytical_model(self, engine_and_model):
        engine, model = engine_and_model
        stats = engine.stats()
        # EM is 24x64 on a 32x32 array -> ceil(24/32)=1 row tile, 2 col tiles.
        assert stats.em_arrays == 2
        assert stats.em_cycles_per_inference == 2
        # AM is 64x32 -> 2 row tiles, 1 col tile.
        assert stats.am_arrays == 2
        assert stats.am_cycles_per_inference == 2
        assert stats.total_arrays == 4
        assert stats.total_cycles_per_inference == 4
        assert stats.am_column_utilization == pytest.approx(1.0)

    def test_stats_as_dict(self, engine_and_model):
        engine, _ = engine_and_model
        data = engine.stats().as_dict()
        assert data["array"] == "32x32"
        assert data["total_cycles"] == data["em_cycles"] + data["am_cycles"]

    def test_memhd_on_matched_array_is_single_cycle_am(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=32, columns=32, epochs=2, seed=1),
            rng=1,
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        engine = InMemoryInference(model, IMCArrayConfig(32, 32))
        stats = engine.stats()
        assert stats.am_arrays == 1
        assert stats.am_cycles_per_inference == 1
        assert stats.am_column_utilization == pytest.approx(1.0)

    def test_wrong_feature_count_raises(self, engine_and_model):
        engine, _ = engine_and_model
        with pytest.raises(ValueError):
            engine.encode(np.zeros((2, 99)))


class TestNoiseInjection:
    def test_heavy_bit_flips_degrade_accuracy(self, engine_and_model, tiny_dataset):
        engine, model = engine_and_model
        clean_accuracy = float(
            np.mean(engine.predict(tiny_dataset.test_features) == tiny_dataset.test_labels)
        )
        noisy = InMemoryInference(
            model,
            IMCArrayConfig(32, 32),
            noise=NoiseModel(bit_flip_probability=0.45),
            rng=3,
        )
        noisy_accuracy = float(
            np.mean(noisy.predict(tiny_dataset.test_features) == tiny_dataset.test_labels)
        )
        assert noisy_accuracy <= clean_accuracy

    def test_degradation_is_graceful_in_flip_rate(self, engine_and_model, tiny_dataset):
        """HDC's noise robustness: prediction agreement degrades gracefully."""
        engine, model = engine_and_model
        clean = engine.predict(tiny_dataset.test_features)

        def agreement(flip_probability: float) -> float:
            noisy_engine = InMemoryInference(
                model,
                IMCArrayConfig(32, 32),
                noise=NoiseModel(bit_flip_probability=flip_probability),
                rng=5,
            )
            noisy = noisy_engine.predict(tiny_dataset.test_features)
            return float(np.mean(clean == noisy))

        mild = agreement(0.01)
        severe = agreement(0.40)
        assert mild > 0.6
        assert mild >= severe

    def test_read_noise_is_applied(self, engine_and_model, tiny_dataset):
        _, model = engine_and_model
        engine = InMemoryInference(
            model,
            IMCArrayConfig(32, 32),
            noise=NoiseModel(read_noise_sigma=0.5),
            rng=7,
        )
        queries = model.encode_binary(tiny_dataset.test_features[:5]).astype(float)
        scores_a = engine.associative_search(queries)
        scores_b = engine.associative_search(queries)
        # Independent read noise means two reads of the same query differ.
        assert not np.allclose(scores_a, scores_b)

    def test_noise_injection_deterministic_given_seed(self, engine_and_model, tiny_dataset):
        _, model = engine_and_model
        noise = NoiseModel(bit_flip_probability=0.1)
        a = InMemoryInference(model, IMCArrayConfig(32, 32), noise=noise, rng=11)
        b = InMemoryInference(model, IMCArrayConfig(32, 32), noise=noise, rng=11)
        features = tiny_dataset.test_features[:20]
        assert np.array_equal(a.predict(features), b.predict(features))


class TestDigitalReference:
    def test_reference_predict_matches_model(self, engine_and_model, tiny_dataset):
        engine, model = engine_and_model
        features = tiny_dataset.test_features[:25]
        assert np.array_equal(
            engine.reference_predict(features), model.predict(features)
        )

    def test_reference_is_noise_immune(self, tiny_dataset, trained_memhd):
        model, _ = trained_memhd
        noisy = InMemoryInference(
            model,
            IMCArrayConfig(32, 32),
            noise=NoiseModel(bit_flip_probability=0.2),
            rng=3,
        )
        features = tiny_dataset.test_features[:25]
        # The digital reference uses the software artifacts, not the noisy
        # mapped cells, so it stays bit-identical to the software model.
        assert np.array_equal(
            noisy.reference_predict(features), model.predict(features)
        )

    def test_matches_software_model_with_packed_engine(self, engine_and_model, tiny_dataset):
        engine, _ = engine_and_model
        features = tiny_dataset.test_features[:25]
        assert engine.matches_software_model(features, engine="packed")

    def test_digital_reference_is_cached(self, engine_and_model):
        engine, _ = engine_and_model
        assert engine.digital_reference() is engine.digital_reference()
