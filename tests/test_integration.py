"""Integration tests: end-to-end pipelines across multiple subsystems."""

import numpy as np
import pytest

from repro.baselines import (
    BasicHDC,
    BasicHDCConfig,
    LeHDC,
    LeHDCConfig,
    QuantHD,
    QuantHDConfig,
    SearcHD,
    SearcHDConfig,
)
from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.data.datasets import load_dataset
from repro.eval.experiments import evaluate_classifier
from repro.imc.analysis import full_mapping_report, improvement_factors
from repro.imc.array import IMCArrayConfig
from repro.imc.simulator import InMemoryInference


class TestEndToEndOnPaperDatasets:
    """Tiny-scale runs of the paper's datasets through the full pipeline."""

    @pytest.mark.parametrize("name", ["mnist", "fmnist"])
    def test_memhd_pipeline_on_image_profiles(self, name):
        dataset = load_dataset(name, scale=0.01)
        model = MEMHDModel(
            dataset.num_features,
            dataset.num_classes,
            MEMHDConfig(dimension=128, columns=64, epochs=6, seed=0),
            rng=0,
        )
        history = model.fit(dataset.train_features, dataset.train_labels)
        accuracy = model.score(dataset.test_features, dataset.test_labels)
        assert accuracy > 0.3  # far above the 10% chance level
        assert history.epochs >= 1

    def test_memhd_pipeline_on_isolet_profile(self):
        dataset = load_dataset("isolet", scale=0.15)
        model = MEMHDModel(
            dataset.num_features,
            dataset.num_classes,
            MEMHDConfig(dimension=128, columns=52, epochs=6, seed=1),
            rng=1,
        )
        model.fit(dataset.train_features, dataset.train_labels)
        accuracy = model.score(dataset.test_features, dataset.test_labels)
        assert accuracy > 0.15  # chance level is ~3.8%

    def test_all_model_families_run_on_one_dataset(self, tiny_dataset):
        """Every Table I model family trains and predicts via the same API."""
        num_features = tiny_dataset.num_features
        num_classes = tiny_dataset.num_classes
        models = [
            MEMHDModel(
                num_features,
                num_classes,
                MEMHDConfig(dimension=64, columns=16, epochs=3, seed=0),
                rng=0,
            ),
            BasicHDC(num_features, num_classes, BasicHDCConfig(dimension=128, seed=0)),
            QuantHD(
                num_features,
                num_classes,
                QuantHDConfig(dimension=128, num_levels=8, epochs=3, seed=0),
            ),
            SearcHD(
                num_features,
                num_classes,
                SearcHDConfig(
                    dimension=256, num_models=4, num_levels=8, epochs=2, seed=0
                ),
            ),
            LeHDC(
                num_features,
                num_classes,
                LeHDCConfig(
                    dimension=256,
                    num_levels=16,
                    epochs=10,
                    learning_rate=0.1,
                    seed=0,
                ),
            ),
        ]
        for model in models:
            record = evaluate_classifier(model, tiny_dataset, record_history=False)
            assert record.test_accuracy > 1.5 / num_classes, model.name
            assert record.memory_kib > 0


class TestSoftwareHardwareEquivalence:
    """The central simulator invariant, exercised end to end."""

    def test_memhd_predictions_survive_imc_mapping(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        for geometry in ((128, 128), (64, 64), (32, 48)):
            engine = InMemoryInference(model, IMCArrayConfig(*geometry))
            assert np.array_equal(
                engine.predict(tiny_dataset.test_features),
                model.predict(tiny_dataset.test_features),
            )

    def test_accuracy_preserved_through_mapping(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        engine = InMemoryInference(model, IMCArrayConfig(128, 128))
        software = model.score(tiny_dataset.test_features, tiny_dataset.test_labels)
        hardware = float(
            np.mean(engine.predict(tiny_dataset.test_features) == tiny_dataset.test_labels)
        )
        assert hardware == pytest.approx(software)

    def test_simulated_stats_consistent_with_table2_model(self, tiny_dataset):
        """Physical tiling and the analytical Table II formulas agree."""
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=128, columns=128, epochs=1, seed=2),
            rng=2,
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        engine = InMemoryInference(model, IMCArrayConfig(128, 128))
        stats = engine.stats()
        reports = full_mapping_report(
            num_features=tiny_dataset.num_features,
            num_classes=tiny_dataset.num_classes,
            baseline_dimension=10240,
            memhd_dimension=128,
            memhd_columns=128,
            partition_counts=(5,),
        )
        memhd_report = reports[-1]
        assert stats.am_arrays == memhd_report.am_arrays
        assert stats.am_cycles_per_inference == memhd_report.am_cycles
        assert stats.em_arrays == memhd_report.em_arrays
        assert stats.em_cycles_per_inference == memhd_report.em_cycles


class TestPaperHeadlineClaims:
    """Scaled-down versions of the paper's two headline comparisons."""

    def test_memhd_matches_higher_dimensional_basichdc(self, tiny_hard_dataset):
        """MEMHD with a small, fully-utilized AM rivals a much larger BasicHDC."""
        memhd = MEMHDModel(
            tiny_hard_dataset.num_features,
            tiny_hard_dataset.num_classes,
            MEMHDConfig(dimension=128, columns=64, epochs=10, seed=3),
            rng=3,
        )
        basic = BasicHDC(
            tiny_hard_dataset.num_features,
            tiny_hard_dataset.num_classes,
            BasicHDCConfig(dimension=1024, refine_epochs=10, seed=3),
        )
        memhd.fit(tiny_hard_dataset.train_features, tiny_hard_dataset.train_labels)
        basic.fit(tiny_hard_dataset.train_features, tiny_hard_dataset.train_labels)
        memhd_acc = memhd.score(
            tiny_hard_dataset.test_features, tiny_hard_dataset.test_labels
        )
        basic_acc = basic.score(
            tiny_hard_dataset.test_features, tiny_hard_dataset.test_labels
        )
        memhd_memory = memhd.memory_report().total_bits
        basic_memory = basic.memory_report().total_bits
        assert memhd_acc >= basic_acc - 0.08
        # At the paper's feature counts (f=784) the gap is >50x (see the
        # memory-model tests); the tiny 32-feature fixture still shows a
        # clear multiple.
        assert basic_memory > 2.5 * memhd_memory

    def test_table2_improvement_factors_hold(self):
        reports = full_mapping_report(
            num_features=784,
            num_classes=10,
            baseline_dimension=10240,
            memhd_dimension=128,
            memhd_columns=128,
            partition_counts=(5, 10),
        )
        factors = improvement_factors(reports)
        assert factors["cycle_reduction"] == pytest.approx(80.0)
        assert factors["array_reduction"] == pytest.approx(80.0)

    def test_multi_centroid_beats_single_centroid_at_same_dimension(
        self, tiny_hard_dataset
    ):
        """The core architectural claim: more centroids per class help."""
        single = MEMHDModel(
            tiny_hard_dataset.num_features,
            tiny_hard_dataset.num_classes,
            MEMHDConfig(
                dimension=96,
                columns=tiny_hard_dataset.num_classes,  # one centroid per class
                epochs=10,
                seed=4,
            ),
            rng=4,
        )
        multi = MEMHDModel(
            tiny_hard_dataset.num_features,
            tiny_hard_dataset.num_classes,
            MEMHDConfig(dimension=96, columns=48, epochs=10, seed=4),
            rng=4,
        )
        single.fit(tiny_hard_dataset.train_features, tiny_hard_dataset.train_labels)
        multi.fit(tiny_hard_dataset.train_features, tiny_hard_dataset.train_labels)
        single_acc = single.score(
            tiny_hard_dataset.test_features, tiny_hard_dataset.test_labels
        )
        multi_acc = multi.score(
            tiny_hard_dataset.test_features, tiny_hard_dataset.test_labels
        )
        assert multi_acc > single_acc
