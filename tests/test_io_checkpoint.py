"""Checkpoint round-trip and validation tests (repro.io.checkpoint)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BasicHDC,
    BasicHDCConfig,
    LeHDC,
    LeHDCConfig,
    OnlineHD,
    OnlineHDConfig,
    QuantHD,
    QuantHDConfig,
    SearcHD,
    SearcHDConfig,
)
from repro.core.associative_memory import MultiCentroidAM
from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.hdc.packed import PackedAM
from repro.io.checkpoint import (
    ARRAY_PREFIX,
    MAGIC,
    MANIFEST_KEY,
    SCHEMA_VERSION,
    CheckpointError,
    CheckpointManifest,
    checkpoint_path,
    content_fingerprint,
    dataset_fingerprint,
    load_checkpoint,
    load_checkpoint_with_manifest,
    load_mapped,
    load_mapped_with_manifest,
    read_manifest,
    save_checkpoint,
)


def _fit_model(kind: str, dataset, dimension: int = 48):
    """Train a tiny instance of one model family on the shared dataset."""
    f, k = dataset.num_features, dataset.num_classes
    if kind == "memhd":
        model = MEMHDModel(
            f,
            k,
            MEMHDConfig(dimension=dimension, columns=max(12, k), epochs=2, seed=3),
            rng=3,
        )
    elif kind == "basichdc":
        model = BasicHDC(
            f, k, BasicHDCConfig(dimension=dimension, refine_epochs=2, seed=3)
        )
    elif kind == "quanthd":
        model = QuantHD(
            f, k, QuantHDConfig(dimension=dimension, num_levels=8, epochs=2, seed=3)
        )
    elif kind == "searchd":
        model = SearcHD(
            f,
            k,
            SearcHDConfig(
                dimension=dimension, num_models=4, num_levels=8, epochs=1, seed=3
            ),
        )
    elif kind == "lehdc":
        model = LeHDC(
            f, k, LeHDCConfig(dimension=dimension, num_levels=8, epochs=2, seed=3)
        )
    elif kind == "onlinehd":
        model = OnlineHD(f, k, OnlineHDConfig(dimension=dimension, epochs=2, seed=3))
    else:
        raise ValueError(kind)
    model.fit(dataset.train_features, dataset.train_labels)
    return model


def _rewrite(source, destination, mutate=None, add=None, drop=()):
    """Copy a checkpoint, optionally tampering with manifest or arrays."""
    with np.load(source) as archive:
        payload = {key: archive[key] for key in archive.files if key not in drop}
    if mutate is not None:
        manifest = json.loads(payload[MANIFEST_KEY].tobytes().decode("utf-8"))
        mutate(manifest)
        payload[MANIFEST_KEY] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
    if add:
        payload.update(add)
    np.savez_compressed(destination, **payload)
    return destination


ALL_KINDS = ("memhd", "basichdc", "quanthd", "searchd", "lehdc", "onlinehd")
PACKED_KINDS = ("memhd", "basichdc", "quanthd")


class TestModelRoundTrip:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_predictions_bit_identical(self, kind, tiny_dataset, tmp_path):
        model = _fit_model(kind, tiny_dataset)
        path = tmp_path / f"{kind}.npz"
        save_checkpoint(model, path)
        restored = load_checkpoint(path)
        assert type(restored) is type(model)
        assert np.array_equal(
            model.predict(tiny_dataset.test_features),
            restored.predict(tiny_dataset.test_features),
        )

    @pytest.mark.parametrize("kind", PACKED_KINDS)
    @pytest.mark.parametrize("dimension", [48, 37])
    def test_both_engines_survive_round_trip(
        self, kind, dimension, tiny_dataset, tmp_path
    ):
        """Float and packed engines stay bit-exact, including odd tail dims."""
        model = _fit_model(kind, tiny_dataset, dimension=dimension)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        restored = load_checkpoint(path)
        for engine in ("float", "packed"):
            assert np.array_equal(
                model.predict(tiny_dataset.test_features, engine=engine),
                restored.predict(tiny_dataset.test_features, engine=engine),
            ), engine

    def test_restored_model_can_keep_training(self, tiny_dataset, tmp_path):
        model = _fit_model("memhd", tiny_dataset)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        restored = load_checkpoint(path)
        history = restored.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        assert history.epochs > 0

    def test_custom_idlevel_encoder_round_trips(self, tiny_dataset, tmp_path):
        """Adopted-encoder hyperparameters (value_range) survive the manifest."""
        from repro.hdc.encoders import IDLevelEncoder

        f, k = tiny_dataset.num_features, tiny_dataset.num_classes
        encoder = IDLevelEncoder(f, 48, num_levels=8, value_range=(0.0, 255.0), rng=3)
        model = QuantHD(
            f,
            k,
            QuantHDConfig(dimension=48, num_levels=8, epochs=1, seed=3),
            encoder=encoder,
        )
        scaled = tiny_dataset.train_features * 255.0
        model.fit(scaled, tiny_dataset.train_labels)
        path = tmp_path / "custom.npz"
        manifest = save_checkpoint(model, path)
        assert manifest.encoder["value_high"] == 255.0
        restored = load_checkpoint(path)
        queries = tiny_dataset.test_features * 255.0
        assert np.array_equal(model.predict(queries), restored.predict(queries))

    def test_custom_float_projection_encoder_round_trips(self, tiny_dataset, tmp_path):
        """A non-binary adopted projection must not be truncated to int8."""
        from repro.hdc.encoders import RandomProjectionEncoder

        f, k = tiny_dataset.num_features, tiny_dataset.num_classes
        encoder = RandomProjectionEncoder(f, 48, binary_projection=False, rng=3)
        model = BasicHDC(
            f,
            k,
            BasicHDCConfig(dimension=48, refine_epochs=1, seed=3),
            encoder=encoder,
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        path = tmp_path / "floatproj.npz"
        manifest = save_checkpoint(model, path)
        assert manifest.encoder["binary_projection"] is False
        restored = load_checkpoint(path)
        assert restored.encoder.projection.dtype == np.float64
        assert np.array_equal(
            model.predict(tiny_dataset.test_features),
            restored.predict(tiny_dataset.test_features),
        )

    def test_load_with_manifest_single_open(self, tiny_dataset, tmp_path):
        model = _fit_model("memhd", tiny_dataset)
        path = tmp_path / "model.npz"
        written = save_checkpoint(model, path)
        restored, manifest = load_checkpoint_with_manifest(path)
        assert manifest == written
        assert np.array_equal(
            model.predict(tiny_dataset.test_features),
            restored.predict(tiny_dataset.test_features),
        )

    def test_checkpoint_file_honors_umask(self, trained_memhd, tmp_path):
        """Not the 0600 mkstemp mode: ordinary umask-derived permissions."""
        from repro.io.checkpoint import _UMASK

        model, _ = trained_memhd
        path = tmp_path / "mode.npz"
        save_checkpoint(model, path)
        assert (path.stat().st_mode & 0o777) == (0o666 & ~_UMASK)

    def test_config_round_trips_exactly(self, tiny_dataset, tmp_path):
        model = _fit_model("memhd", tiny_dataset)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        restored = load_checkpoint(path)
        assert restored.config == model.config

    def test_unfitted_model_refuses_to_save(self, tiny_dataset, tmp_path):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=32, columns=8, seed=0),
        )
        with pytest.raises(RuntimeError):
            save_checkpoint(model, tmp_path / "unfit.npz")

    def test_unsupported_object_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot checkpoint"):
            save_checkpoint(object(), tmp_path / "nope.npz")

    def test_save_appends_npz_suffix(self, trained_memhd, tmp_path):
        """numpy appends .npz silently; checkpoint_path makes that explicit."""
        model, _ = trained_memhd
        spec = tmp_path / "model"
        save_checkpoint(model, spec)
        resolved = checkpoint_path(spec)
        assert resolved == str(spec) + ".npz"
        assert load_checkpoint(resolved) is not None

    def test_save_creates_parent_directories(self, trained_memhd, tmp_path):
        model, _ = trained_memhd
        nested = tmp_path / "a" / "b" / "model.npz"
        save_checkpoint(model, nested)
        assert nested.is_file()

    def test_save_is_atomic(self, trained_memhd, tmp_path, monkeypatch):
        """A failed save leaves no scratch file and no truncated checkpoint."""
        model, _ = trained_memhd
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        good = path.read_bytes()

        def explode(stream, **payload):
            stream.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", explode)
        with pytest.raises(OSError, match="disk full"):
            save_checkpoint(model, path)
        assert path.read_bytes() == good
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]


class TestBareMemoryRoundTrip:
    def test_multicentroid_am(self, trained_memhd, tmp_path):
        model, _ = trained_memhd
        am = model.associative_memory
        path = tmp_path / "am.npz"
        save_checkpoint(am, path)
        restored = load_checkpoint(path)
        assert isinstance(restored, MultiCentroidAM)
        queries = (np.arange(am.dimension * 5) % 2).reshape(5, -1)
        for packed in (False, True):
            assert np.array_equal(
                am.predict(queries, packed=packed),
                restored.predict(queries, packed=packed),
            )
        assert np.array_equal(am.binary_memory, restored.binary_memory)
        assert np.array_equal(am.fp_memory, restored.fp_memory)

    def test_packed_am(self, trained_memhd, tmp_path):
        model, _ = trained_memhd
        packed = model.associative_memory.packed()
        path = tmp_path / "packed.npz"
        save_checkpoint(packed, path)
        restored = load_checkpoint(path)
        assert isinstance(restored, PackedAM)
        assert restored.dimension == packed.dimension
        assert restored.memory.alphabet == packed.memory.alphabet
        assert np.array_equal(restored.memory.words, packed.memory.words)
        queries = (np.arange(packed.dimension * 4) % 2).reshape(4, -1)
        assert np.array_equal(packed.scores(queries), restored.scores(queries))


class TestManifest:
    def test_manifest_contents(self, tiny_dataset, tmp_path):
        model = _fit_model("memhd", tiny_dataset)
        path = tmp_path / "model.npz"
        written = save_checkpoint(
            model, path, dataset=tiny_dataset, metrics={"test_accuracy": 0.9}
        )
        manifest = read_manifest(path)
        assert manifest == written
        assert manifest.schema_version == SCHEMA_VERSION
        assert manifest.model_class == "MEMHDModel"
        assert manifest.model_name == "MEMHD"
        assert manifest.num_features == tiny_dataset.num_features
        assert manifest.num_classes == tiny_dataset.num_classes
        assert manifest.metrics == {"test_accuracy": 0.9}
        assert manifest.dataset["name"] == tiny_dataset.name
        assert len(manifest.dataset["sha256"]) == 64
        assert set(manifest.arrays) == {
            "encoder_projection",
            "fp_memory",
            "binary_memory",
            "column_classes",
        }
        spec = manifest.arrays["binary_memory"]
        assert spec["dtype"] == "int8"
        assert spec["shape"] == [model.config.columns, model.config.dimension]

    def test_fingerprint_is_stable_and_sensitive(self, tiny_dataset):
        first = dataset_fingerprint(tiny_dataset)
        second = dataset_fingerprint(tiny_dataset)
        assert first == second
        mutated = type(tiny_dataset)(
            name=tiny_dataset.name,
            train_features=tiny_dataset.train_features + 1e-9,
            train_labels=tiny_dataset.train_labels,
            test_features=tiny_dataset.test_features,
            test_labels=tiny_dataset.test_labels,
        )
        assert dataset_fingerprint(mutated)["sha256"] != first["sha256"]

    def test_manifest_json_rejects_wrong_magic(self):
        payload = {"magic": "something-else", "schema_version": 1}
        with pytest.raises(CheckpointError, match="magic"):
            CheckpointManifest.from_json(json.dumps(payload))


class TestContentFingerprint:
    """content_fingerprint: content-level identity across re-saves."""

    def test_stable_across_resaves_of_same_model(self, tiny_dataset, tmp_path):
        model = _fit_model("memhd", tiny_dataset)
        first = save_checkpoint(model, tmp_path / "a.npz")
        # Force a different creation timestamp on the second save so the
        # files genuinely differ byte-for-byte.
        second = _rewrite(
            tmp_path / "a.npz",
            tmp_path / "b.npz",
            mutate=lambda m: m.update(created_unix=m["created_unix"] + 3600),
        )
        assert first.created_unix != read_manifest(second).created_unix
        assert (tmp_path / "a.npz").read_bytes() != second.read_bytes()
        assert content_fingerprint(tmp_path / "a.npz") == content_fingerprint(second)

    def test_sensitive_to_weight_changes(self, tiny_dataset, tmp_path):
        model = _fit_model("memhd", tiny_dataset)
        save_checkpoint(model, tmp_path / "a.npz")
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        save_checkpoint(model, tmp_path / "b.npz")
        assert content_fingerprint(tmp_path / "a.npz") != content_fingerprint(
            tmp_path / "b.npz"
        )

    def test_sensitive_to_manifest_changes(self, tiny_dataset, tmp_path):
        model = _fit_model("memhd", tiny_dataset)
        save_checkpoint(model, tmp_path / "a.npz")
        tweaked = _rewrite(
            tmp_path / "a.npz",
            tmp_path / "b.npz",
            mutate=lambda m: m.update(metrics={"test_accuracy": 0.99}),
        )
        assert content_fingerprint(tmp_path / "a.npz") != content_fingerprint(tweaked)

    def test_is_hex_digest(self, tiny_dataset, tmp_path):
        model = _fit_model("memhd", tiny_dataset)
        save_checkpoint(model, tmp_path / "a.npz")
        digest = content_fingerprint(tmp_path / "a.npz")
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_rejects_non_checkpoint(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CheckpointError):
            content_fingerprint(path)


class TestValidation:
    @pytest.fixture()
    def checkpoint(self, tiny_dataset, tmp_path):
        model = _fit_model("memhd", tiny_dataset)
        path = tmp_path / "good.npz"
        save_checkpoint(model, path)
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "absent.npz")

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_truncated_file_rejected(self, checkpoint, tmp_path):
        clipped = tmp_path / "clipped.npz"
        clipped.write_bytes(checkpoint.read_bytes()[:100])
        with pytest.raises(CheckpointError):
            load_checkpoint(clipped)

    def test_npz_without_manifest_rejected(self, tmp_path):
        path = tmp_path / "plain.npz"
        np.savez_compressed(path, some_array=np.zeros(3))
        with pytest.raises(CheckpointError, match="manifest"):
            load_checkpoint(path)

    def test_newer_schema_version_rejected(self, checkpoint, tmp_path):
        def bump(manifest):
            manifest["schema_version"] = SCHEMA_VERSION + 1

        path = _rewrite(checkpoint, tmp_path / "future.npz", mutate=bump)
        with pytest.raises(CheckpointError, match="newer"):
            load_checkpoint(path)

    def test_invalid_schema_version_rejected(self, checkpoint, tmp_path):
        def clobber(manifest):
            manifest["schema_version"] = 0

        path = _rewrite(checkpoint, tmp_path / "zero.npz", mutate=clobber)
        with pytest.raises(CheckpointError, match="schema version"):
            load_checkpoint(path)

    def test_unknown_model_class_rejected(self, checkpoint, tmp_path):
        def rename(manifest):
            manifest["model_class"] = "TotallyNewModel"

        path = _rewrite(checkpoint, tmp_path / "unknown.npz", mutate=rename)
        with pytest.raises(CheckpointError, match="unknown model class"):
            load_checkpoint(path)

    def test_expected_class_mismatch(self, checkpoint):
        with pytest.raises(CheckpointError, match="expected"):
            load_checkpoint(checkpoint, expected_class="QuantHD")

    def test_missing_array_rejected(self, checkpoint, tmp_path):
        path = _rewrite(
            checkpoint,
            tmp_path / "missing.npz",
            drop=(ARRAY_PREFIX + "binary_memory",),
        )
        with pytest.raises(CheckpointError, match="missing arrays"):
            load_checkpoint(path)

    def test_extra_array_rejected_only_when_strict(self, checkpoint, tmp_path):
        path = _rewrite(
            checkpoint,
            tmp_path / "extra.npz",
            add={ARRAY_PREFIX + "surprise": np.zeros(4)},
        )
        with pytest.raises(CheckpointError, match="absent from its manifest"):
            load_checkpoint(path)
        assert load_checkpoint(path, strict=False) is not None

    def test_dtype_mismatch_rejected(self, checkpoint, tmp_path):
        def retype(manifest):
            manifest["arrays"]["binary_memory"]["dtype"] = "float32"

        path = _rewrite(checkpoint, tmp_path / "retyped.npz", mutate=retype)
        with pytest.raises(CheckpointError, match="dtype"):
            load_checkpoint(path)

    def test_shape_mismatch_rejected(self, checkpoint, tmp_path):
        def reshape(manifest):
            manifest["arrays"]["binary_memory"]["shape"] = [1, 1]

        path = _rewrite(checkpoint, tmp_path / "reshaped.npz", mutate=reshape)
        with pytest.raises(CheckpointError, match="shape"):
            load_checkpoint(path)

    def test_manifest_missing_required_field_rejected(self, checkpoint, tmp_path):
        def strip(manifest):
            del manifest["num_features"]

        path = _rewrite(checkpoint, tmp_path / "stripped.npz", mutate=strip)
        with pytest.raises(CheckpointError, match="missing fields"):
            load_checkpoint(path)

    def test_invalid_config_rejected(self, checkpoint, tmp_path):
        def poison(manifest):
            manifest["config"]["dimension"] = -5

        path = _rewrite(checkpoint, tmp_path / "badconfig.npz", mutate=poison)
        with pytest.raises(CheckpointError, match="config"):
            load_checkpoint(path)

    def test_unknown_config_key_strict_vs_lenient(self, checkpoint, tmp_path):
        def extend(manifest):
            manifest["config"]["a_future_knob"] = True

        path = _rewrite(checkpoint, tmp_path / "futurecfg.npz", mutate=extend)
        with pytest.raises(CheckpointError, match="config"):
            load_checkpoint(path)
        assert load_checkpoint(path, strict=False) is not None

    def test_manifest_magic_in_file(self, checkpoint):
        with np.load(checkpoint) as archive:
            manifest = json.loads(archive[MANIFEST_KEY].tobytes().decode("utf-8"))
        assert manifest["magic"] == MAGIC


class TestLoadMapped:
    """Zero-copy loader: mapped arrays must be byte-identical to eager ones."""

    @pytest.mark.parametrize("kind", PACKED_KINDS)
    @pytest.mark.parametrize("dimension", [48, 37])
    def test_mapped_matches_eager(self, kind, dimension, tiny_dataset, tmp_path):
        model = _fit_model(kind, tiny_dataset, dimension=dimension)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        eager = load_checkpoint(path)
        mapped = load_mapped(path)
        assert type(mapped) is type(eager)
        for engine in ("float", "packed"):
            assert np.array_equal(
                eager.predict(tiny_dataset.test_features, engine=engine),
                mapped.predict(tiny_dataset.test_features, engine=engine),
            ), engine

    def test_extraction_cache_layout_and_reuse(self, tiny_dataset, tmp_path):
        model = _fit_model("memhd", tiny_dataset)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        load_mapped(path)
        root = tmp_path / "model.npz.mapped"
        extractions = sorted(entry for entry in root.iterdir() if entry.is_dir())
        assert len(extractions) == 1
        marker = extractions[0] / "manifest.json"
        assert marker.exists()
        assert list(extractions[0].glob("*.npy"))
        stamps = {
            member.name: member.stat().st_mtime_ns
            for member in extractions[0].iterdir()
        }
        load_mapped(path)  # second load: pure cache hit, nothing rewritten
        assert stamps == {
            member.name: member.stat().st_mtime_ns
            for member in extractions[0].iterdir()
        }

    def test_rewritten_checkpoint_invalidates_cache(self, tiny_dataset, tmp_path):
        path = tmp_path / "model.npz"
        save_checkpoint(_fit_model("memhd", tiny_dataset), path)
        load_mapped(path)
        root = tmp_path / "model.npz.mapped"
        (old_extraction,) = (entry for entry in root.iterdir() if entry.is_dir())
        # Re-save a *different* model at the same path with a bumped mtime.
        save_checkpoint(_fit_model("memhd", tiny_dataset, dimension=64), path)
        os.utime(path, ns=(0, path.stat().st_mtime_ns + 1_000_000_000))
        restored = load_mapped(path)
        assert restored.config.dimension == 64
        (new_extraction,) = (entry for entry in root.iterdir() if entry.is_dir())
        assert new_extraction != old_extraction
        assert not old_extraction.exists(), "stale extraction must be pruned"

    def test_mapped_manifest_and_expected_class(self, tiny_dataset, tmp_path):
        model = _fit_model("memhd", tiny_dataset)
        path = tmp_path / "model.npz"
        save_checkpoint(model, path)
        _, mapped_manifest = load_mapped_with_manifest(path)
        assert mapped_manifest.to_json() == read_manifest(path).to_json()
        with pytest.raises(CheckpointError, match="expected a"):
            load_mapped(path, expected_class="BasicHDC")

    def test_mapped_arrays_are_read_only(self, tiny_dataset, tmp_path):
        """Mapped arrays are shared pages: in-place writes must be refused.

        (``fit`` on a mapped model still works -- training builds fresh
        private arrays -- so a stray write can never corrupt the shared
        extraction other workers are mapping.)
        """
        path = tmp_path / "model.npz"
        save_checkpoint(_fit_model("memhd", tiny_dataset), path)
        mapped = load_mapped(path)
        am = mapped._am
        for array in (am.binary_memory, am.fp_memory, am.column_classes):
            assert not array.flags.writeable
        with pytest.raises(ValueError, match="read-only"):
            am.binary_memory[0, 0] = 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_mapped(tmp_path / "absent.npz")

    @given(dimension=st.integers(min_value=17, max_value=96))
    @settings(max_examples=6, deadline=None)
    def test_mapped_bit_exact_any_dimension(
        self, dimension, tiny_dataset, tmp_path_factory
    ):
        """Property: eager/mapped equivalence holds at every D, odd tails
        included (packed words at D % 64 != 0 exercise the masked path)."""
        model = _fit_model("memhd", tiny_dataset, dimension=dimension)
        path = tmp_path_factory.mktemp("mapped-prop") / "model.npz"
        save_checkpoint(model, path)
        eager = load_checkpoint(path)
        mapped = load_mapped(path)
        for engine in ("float", "packed"):
            assert np.array_equal(
                eager.predict(tiny_dataset.test_features, engine=engine),
                mapped.predict(tiny_dataset.test_features, engine=engine),
            ), f"mapped != eager at D={dimension} ({engine})"
