"""Artifact registry tests (repro.io.registry)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.io.checkpoint import content_fingerprint
from repro.io.registry import (
    LATEST_TAG,
    ArtifactRegistry,
    RegistryError,
    default_store,
    split_spec,
)


@pytest.fixture()
def registry(tmp_path):
    return ArtifactRegistry(tmp_path / "store")


@pytest.fixture()
def model(trained_memhd):
    return trained_memhd[0]


def _age(registry, name, tag, seconds):
    """Push an entry's mtime into the past (deterministic 'latest' order)."""
    path = registry.path_for(name, tag)
    stat = path.stat()
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


class TestSpecs:
    def test_split_spec(self):
        assert split_spec("mnist-memhd") == ("mnist-memhd", LATEST_TAG)
        assert split_spec("mnist-memhd:v3") == ("mnist-memhd", "v3")
        assert split_spec("a.b_c-1:latest") == ("a.b_c-1", LATEST_TAG)

    @pytest.mark.parametrize("spec", ["", ":v1", "bad/name", "na me", "-lead", "a:b:c"])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(RegistryError):
            split_spec(spec)

    def test_default_store_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "elsewhere"))
        assert default_store() == str(tmp_path / "elsewhere")
        monkeypatch.delenv("REPRO_STORE")
        assert default_store().endswith(os.path.join(".cache", "repro"))


class TestSaveResolve:
    def test_auto_tags_increment(self, registry, model):
        first = registry.save(model, "demo")
        second = registry.save(model, "demo")
        assert (first.tag, second.tag) == ("v1", "v2")
        assert registry.save(model, "demo", tag="release").tag == "release"

    def test_resolve_exact_and_latest(self, registry, model):
        registry.save(model, "demo")
        registry.save(model, "demo")
        _age(registry, "demo", "v1", 60)
        assert registry.resolve("demo:v1").name == "v1.npz"
        assert registry.resolve("demo").name == "v2.npz"
        assert registry.resolve("demo:latest").name == "v2.npz"

    def test_latest_follows_mtime_not_tag_name(self, registry, model):
        registry.save(model, "demo", tag="newer")
        registry.save(model, "demo", tag="alpha")
        _age(registry, "demo", "newer", 60)
        assert registry.resolve("demo").name == "alpha.npz"

    def test_reserved_latest_tag_rejected_on_save(self, registry, model):
        with pytest.raises(RegistryError, match="reserved"):
            registry.save(model, "demo", tag="latest")

    def test_resolve_unknown(self, registry, model):
        with pytest.raises(RegistryError, match="no artifact"):
            registry.resolve("ghost")
        registry.save(model, "demo")
        with pytest.raises(RegistryError, match="not found"):
            registry.resolve("demo:v9")

    def test_load_round_trip(self, registry, model, tiny_dataset):
        registry.save(model, "demo", dataset=tiny_dataset)
        restored = registry.load("demo")
        assert np.array_equal(
            model.predict(tiny_dataset.test_features),
            restored.predict(tiny_dataset.test_features),
        )

    def test_inspect_manifest(self, registry, model, tiny_dataset):
        registry.save(model, "demo", dataset=tiny_dataset, metrics={"acc": 1.0})
        manifest = registry.inspect("demo")
        assert manifest.model_class == "MEMHDModel"
        assert manifest.metrics == {"acc": 1.0}
        assert manifest.dataset["name"] == tiny_dataset.name

    def test_mapped_load_bit_exact_and_listing_clean(
        self, registry, model, tiny_dataset
    ):
        """``load(mapped=True)`` equals the eager load; the sidecar
        extraction cache never shows up as a registry entry."""
        registry.save(model, "demo")
        eager = registry.load("demo")
        mapped = registry.load("demo", mapped=True)
        assert np.array_equal(
            eager.predict(tiny_dataset.test_features, engine="packed"),
            mapped.predict(tiny_dataset.test_features, engine="packed"),
        )
        cache = registry.path_for("demo", "v1").with_name("v1.npz.mapped")
        assert cache.is_dir()
        assert [entry.tag for entry in registry.list_entries("demo")] == ["v1"]

    def test_remove_drops_mapped_cache(self, registry, model):
        registry.save(model, "demo")
        registry.save(model, "demo")
        registry.load("demo:v1", mapped=True)
        cache = registry.path_for("demo", "v1").with_name("v1.npz.mapped")
        assert cache.is_dir()
        registry.remove("demo:v1")
        assert not cache.exists(), "remove() must drop the extraction cache"


class TestProvenance:
    """Content fingerprints and the on_save observer hook."""

    def test_fingerprint_matches_content_fingerprint(self, registry, model):
        registry.save(model, "demo")
        assert registry.fingerprint("demo:v1") == content_fingerprint(
            registry.resolve("demo:v1")
        )

    def test_fingerprint_equal_across_resaves(self, registry, model):
        """Two saves of the same model fingerprint identically even though
        the files differ byte-for-byte (embedded creation timestamps)."""
        registry.save(model, "demo", tag="one")
        registry.save(model, "demo", tag="two")
        assert registry.fingerprint("demo:one") == registry.fingerprint("demo:two")

    def test_fingerprint_differs_for_different_models(
        self, registry, model, tiny_dataset
    ):
        registry.save(model, "demo", tag="a")
        retrained = registry.load("demo:a")
        retrained.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        registry.save(retrained, "demo", tag="b")
        assert registry.fingerprint("demo:a") != registry.fingerprint("demo:b")

    def test_fingerprint_unknown_artifact(self, registry):
        with pytest.raises(RegistryError, match="no artifact"):
            registry.fingerprint("ghost")

    def test_on_save_observer_sees_every_entry(self, tmp_path, model):
        seen = []
        registry = ArtifactRegistry(tmp_path / "store", on_save=seen.append)
        first = registry.save(model, "demo")
        second = registry.save(model, "demo", tag="release")
        assert [entry.spec for entry in seen] == ["demo:v1", "demo:release"]
        assert seen[0] == first and seen[1] == second
        assert all(os.path.isfile(entry.path) for entry in seen)

    def test_no_observer_by_default(self, registry, model):
        assert registry.on_save is None
        registry.save(model, "demo")  # must not raise


class TestListings:
    def test_empty_store(self, registry):
        assert registry.names() == []
        assert registry.list_entries() == []
        assert registry.tags("absent") == []

    def test_list_entries(self, registry, model):
        registry.save(model, "alpha")
        registry.save(model, "beta")
        registry.save(model, "beta")
        _age(registry, "beta", "v1", 60)
        entries = registry.list_entries()
        assert [entry.spec for entry in entries] == ["alpha:v1", "beta:v2", "beta:v1"]
        assert registry.names() == ["alpha", "beta"]
        only_beta = registry.list_entries("beta")
        assert {entry.name for entry in only_beta} == {"beta"}
        summary = only_beta[0].summary()
        assert summary["artifact"].startswith("beta:")
        assert summary["class"] == "MEMHDModel"
        assert summary["size_KiB"] > 0

    def test_listing_skips_corrupt_files(self, registry, model):
        registry.save(model, "demo")
        bad = registry.root / "demo" / "broken.npz"
        bad.write_bytes(b"junk")
        specs = [entry.spec for entry in registry.list_entries()]
        assert specs == ["demo:v1"]

    def test_listing_skips_manifest_with_missing_fields(self, registry, model):
        """A tampered manifest must not crash `repro models list`."""
        import json

        import numpy as np

        from repro.io.checkpoint import MANIFEST_KEY, MAGIC

        registry.save(model, "demo")
        truncated = {"magic": MAGIC, "schema_version": 1}
        bad = registry.root / "demo" / "tampered.npz"
        np.savez_compressed(
            bad,
            **{
                MANIFEST_KEY: np.frombuffer(
                    json.dumps(truncated).encode("utf-8"), dtype=np.uint8
                )
            },
        )
        specs = [entry.spec for entry in registry.list_entries()]
        assert specs == ["demo:v1"]


class TestRemovePrune:
    def test_remove(self, registry, model):
        registry.save(model, "demo")
        registry.remove("demo:v1")
        assert registry.names() == []
        with pytest.raises(RegistryError, match="not found"):
            registry.remove("demo:v1")

    def test_remove_refuses_latest(self, registry, model):
        registry.save(model, "demo")
        with pytest.raises(RegistryError, match="exact tag"):
            registry.remove("demo")

    def test_prune_keeps_newest(self, registry, model):
        for _ in range(5):
            registry.save(model, "demo")
        for index, tag in enumerate(("v1", "v2", "v3", "v4")):
            _age(registry, "demo", tag, 600 - 100 * index)
        removed = registry.prune(name="demo", keep=2)
        assert len(removed) == 3
        assert registry.tags("demo") == ["v5", "v4"]

    def test_prune_zero_removes_everything(self, registry, model):
        registry.save(model, "alpha")
        registry.save(model, "beta")
        removed = registry.prune(keep=0)
        assert len(removed) == 2
        assert registry.names() == []
        assert not any(registry.root.iterdir()) or registry.root.is_dir()

    def test_prune_is_name_scoped(self, registry, model):
        registry.save(model, "alpha")
        registry.save(model, "beta")
        registry.prune(name="alpha", keep=0)
        assert registry.names() == ["beta"]

    def test_prune_negative_keep_rejected(self, registry):
        with pytest.raises(RegistryError, match="non-negative"):
            registry.prune(keep=-1)

    def test_prune_unknown_name_rejected(self, registry, model):
        """A typo'd --name must error, not silently prune nothing."""
        registry.save(model, "demo")
        with pytest.raises(RegistryError, match="no artifact"):
            registry.prune(name="dmeo", keep=0)
        assert registry.tags("demo") == ["v1"]
