"""Hypothesis property tests for the lease/claim protocol invariants.

The lease protocol (``repro.eval.distributed.LeaseDir``) is driven over a
*simulated* clock (the injectable ``clock=``) and a real shared tmpdir,
replaying random interleavings of claim / renew / release / clock-advance
across several workers.  The invariants pinned here:

* **single ownership** -- at no point do two workers both believe they
  hold the same key, unless the earlier owner stalled past its TTL
  without renewing (the fundamental lease caveat, which the run loop
  makes harmless via the store re-check).
* **liveness** -- a key whose owner vanishes (crash: the worker simply
  stops renewing) becomes claimable by anyone after TTL + epsilon.
* **torn claim records** -- an empty or unparsable lease body (creator
  killed mid-write) is expired immediately, regardless of mtime, so a
  torn file can never wedge a cell forever.  This behaviour is pinned:
  changing it silently would re-introduce the wedge.
"""

import json

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.eval.distributed import LeaseDir

TTL = 10.0
#: Slack added when stepping the simulated clock across the TTL boundary,
#: comfortably above float rounding at the simulated epoch (~1e-10).
EPSILON = 1e-3

#: Random protocol scripts: each step is (worker index, action) and the
#: simulated clock advances by ``dt`` seconds in between.
steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # which worker acts
        st.sampled_from(["claim", "renew", "release", "crash"]),
        st.floats(min_value=0.0, max_value=8.0),  # clock advance after
    ),
    min_size=1,
    max_size=30,
)


class SimClock:
    def __init__(self):
        self.now = 1_000_000.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class SimWorker:
    """One worker identity with local belief about the keys it owns."""

    def __init__(self, root, name, clock):
        self.name = name
        self.leases = LeaseDir(root, name, ttl_s=TTL, clock=clock)
        self.owned = set()  #: keys this worker believes it holds
        self.last_renew = {}  #: key -> sim time of last heartbeat

    def claim(self, key, now):
        if self.leases.try_claim(key) in ("claimed", "reclaimed"):
            self.owned.add(key)
            self.last_renew[key] = now

    def renew(self, now):
        lost = set(self.leases.renew())
        self.owned -= lost
        for key in self.owned:
            self.last_renew[key] = now

    def release(self, key):
        if key in self.owned:
            self.leases.release(key)
            self.owned.discard(key)

    def crash(self):
        # A crash is just the absence of future renews/releases: the
        # lease files stay behind exactly as a SIGKILL would leave them.
        self.owned.clear()
        self.leases._held.clear()


@settings(max_examples=40, deadline=None)
@given(script=steps)
def test_no_two_live_owners_under_random_interleavings(tmp_path_factory, script):
    """Ownership is exclusive unless an owner outlived its TTL un-renewed.

    Whenever two workers simultaneously believe they own the same key,
    the earlier owner must have gone longer than TTL (in simulated time)
    without a successful renewal -- i.e. only a *stalled* owner can ever
    be raced, never a live one.
    """
    root = tmp_path_factory.mktemp("leases")
    clock = SimClock()
    workers = [SimWorker(root, f"w{i}", clock) for i in range(3)]
    key = "cell"
    for index, action, dt in script:
        worker = workers[index]
        now = clock()
        if action == "claim":
            worker.claim(key, now)
        elif action == "renew":
            worker.renew(now)
        elif action == "release":
            worker.release(key)
        elif action == "crash":
            worker.crash()
        owners = [w for w in workers if key in w.owned]
        if len(owners) > 1:
            # The protocol admits multiple believers only when all but the
            # newest stalled past the TTL without renewing.
            owners.sort(key=lambda w: w.last_renew[key])
            for stale in owners[:-1]:
                stalled_for = now - stale.last_renew[key]
                assert stalled_for > TTL, (
                    f"{stale.name} was raced while live: last renew "
                    f"{stalled_for:.3f}s ago (TTL {TTL}s); owners "
                    f"{[w.name for w in owners]}"
                )
        clock.advance(dt)


@settings(max_examples=40, deadline=None)
@given(
    advance=st.floats(min_value=0.0, max_value=100.0),
    renews=st.integers(min_value=0, max_value=5),
)
def test_abandoned_key_becomes_claimable_after_ttl(tmp_path_factory, advance, renews):
    """Liveness: once an owner stops renewing, TTL + epsilon unlocks the key."""
    assume(abs(advance - TTL) > EPSILON)  # stay off the exact expiry boundary
    root = tmp_path_factory.mktemp("leases")
    clock = SimClock()
    owner = LeaseDir(root, "owner", ttl_s=TTL, clock=clock)
    assert owner.try_claim("cell") == "claimed"
    for _ in range(renews):
        clock.advance(TTL / 4.0)
        assert owner.renew() == []
    # The owner crashes here (never renews again); time passes.
    clock.advance(advance)
    claimant = LeaseDir(root, "claimant", ttl_s=TTL, clock=clock)
    outcome = claimant.try_claim("cell")
    if advance > TTL:
        assert outcome == "reclaimed"
    else:
        assert outcome is None
        # ... and waiting out the remaining TTL always unlocks it.
        clock.advance(TTL - advance + EPSILON)
        assert claimant.try_claim("cell") == "reclaimed"


@settings(max_examples=40, deadline=None)
@given(body=st.binary(max_size=64))
def test_torn_claim_records_are_expired_regardless_of_mtime(tmp_path_factory, body):
    """Any lease body that is not a valid claim record is expired instantly.

    ``O_CREAT|O_EXCL`` then write means a killed creator can leave a
    prefix of the body (or nothing).  Whatever bytes remain -- pinned for
    *arbitrary* junk here, fresh mtime and all -- the next claimant must
    be able to take the cell over immediately.
    """
    try:
        parsed = json.loads(body.decode("utf-8"))
        is_valid = isinstance(parsed, dict) and "worker" in parsed
    except (ValueError, UnicodeDecodeError):
        is_valid = False
    root = tmp_path_factory.mktemp("leases")
    clock = SimClock()
    leases = LeaseDir(root, "claimant", ttl_s=TTL, clock=clock)
    root.mkdir(parents=True, exist_ok=True)
    (root / "cell.lease").write_bytes(body)
    state = leases.read("cell")
    assert state is not None
    if is_valid:
        # Degenerate corner: random bytes that *are* a claim record parse
        # as a live lease (fresh mtime) -- exercised for completeness.
        assert not state.torn
        return
    assert state.torn
    assert leases.is_expired(state)
    assert leases.try_claim("cell") == "reclaimed"
    assert leases.held_keys == ["cell"]


def test_release_is_idempotent_and_scoped_to_own_claim(tmp_path):
    """Releasing twice, or without a claim, never disturbs another owner."""
    a = LeaseDir(tmp_path, "a", ttl_s=TTL)
    b = LeaseDir(tmp_path, "b", ttl_s=TTL)
    assert a.try_claim("cell") == "claimed"
    b.release("cell")  # b never claimed: must be a no-op
    assert a.held_keys == ["cell"]
    assert b.try_claim("cell") is None  # a still owns it
    a.release("cell")
    a.release("cell")  # idempotent
    assert b.try_claim("cell") == "claimed"


def test_stalled_owner_cannot_release_or_renew_the_thiefs_lease(tmp_path):
    """After a reclaim, the previous owner's renew/release are inert."""
    clock = SimClock()
    stalled = LeaseDir(tmp_path, "stalled", ttl_s=TTL, clock=clock)
    assert stalled.try_claim("cell") == "claimed"
    clock.advance(TTL * 3)
    thief = LeaseDir(tmp_path, "thief", ttl_s=TTL, clock=clock)
    assert thief.try_claim("cell") == "reclaimed"
    assert stalled.renew() == ["cell"]  # loss detected, thief untouched
    stalled.release("cell")  # belated release: must not unlink thief's file
    state = thief.read("cell")
    assert state is not None and state.worker == "thief"
    assert thief.renew() == []
