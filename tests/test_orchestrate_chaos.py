"""Chaos harness: SIGKILL the runner, resume, and demand identical results.

The orchestration mirror of the PR 3 "interrupted == oneshot" sweep test:
a workflow killed at a step boundary or in the middle of a step, then
resumed with ``repro run`` (resume is the default), must land in exactly
the same RunDB end-state -- same config hashes, same deterministic
metrics, same artifact content fingerprints -- as a run that was never
interrupted.  Artifact equality is content-level SHA-256
(:func:`repro.io.checkpoint.content_fingerprint` for checkpoints), which
is the meaningful form of "bit-identical" for archives that embed
creation timestamps.
"""

import json
import os
import random
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.io.registry import ArtifactRegistry
from repro.orchestrate import RunDB, workdir_paths

pytest.importorskip("yaml")

SRC_ROOT = str(Path(repro.__file__).resolve().parents[1])

#: Per-step artificial delay for the killed runs: wide enough that the
#: kill signal always lands before the next step completes, small enough
#: to keep the suite fast.
STEP_DELAY_S = 0.4

KILL_TIMEOUT_S = 60.0


def tiny_payload():
    return {
        "name": "chaos",
        "seed": 9,
        "steps": [
            {
                "name": "prep",
                "kind": "dataset",
                "config": {"dataset": "mnist", "scale": 0.01},
            },
            {
                "name": "train",
                "kind": "train",
                "needs": ["prep"],
                "config": {
                    "model": "memhd",
                    "dataset": "mnist",
                    "scale": 0.01,
                    "dimension": 32,
                    "columns": 16,
                    "epochs": 1,
                    "save": "chaos-model:wf",
                },
            },
            {
                "name": "grid",
                "kind": "sweep",
                "needs": ["prep"],
                "config": {
                    "spec": {
                        "models": ["memhd"],
                        "datasets": ["mnist"],
                        "dimensions": [32],
                        "columns": [16],
                        "epochs": 1,
                        "scale": 0.01,
                        "seed": 9,
                    }
                },
            },
            {
                "name": "bench",
                "kind": "bench",
                "needs": ["train"],
                "config": {
                    "model": "chaos-model:wf",
                    "dataset": "mnist",
                    "scale": 0.01,
                    "engines": ["float", "packed"],
                },
            },
        ],
    }


def runner_command(workflow, workdir):
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "run",
        str(workflow),
        "--workdir",
        str(workdir),
    ]


def runner_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def end_state(workdir):
    with RunDB(workdir_paths(workdir)["rundb"]) as db:
        return db.end_state()


def completed_step_count(db_path):
    """Completed-step count via a read-only connection; 0 before the DB exists."""
    if not os.path.isfile(db_path):
        return 0
    connection = sqlite3.connect(str(db_path))
    try:
        (count,) = connection.execute(
            "SELECT COUNT(DISTINCT step) FROM steps WHERE outcome = 'completed'"
        ).fetchone()
        return int(count)
    except sqlite3.OperationalError:  # table not created yet
        return 0
    finally:
        connection.close()


def step_is_running(db_path, step):
    if not os.path.isfile(db_path):
        return False
    connection = sqlite3.connect(str(db_path))
    try:
        (count,) = connection.execute(
            "SELECT COUNT(*) FROM steps WHERE step = ? AND outcome = 'running'",
            (step,),
        ).fetchone()
        return count > 0
    except sqlite3.OperationalError:
        return False
    finally:
        connection.close()


def kill_when(process, condition, what):
    """SIGKILL ``process`` as soon as ``condition()`` is true."""
    deadline = time.monotonic() + KILL_TIMEOUT_S
    while time.monotonic() < deadline:
        if process.poll() is not None:
            pytest.fail(
                f"runner exited (rc={process.returncode}) before the kill "
                f"condition ({what}) was reached"
            )
        if condition():
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
            assert process.returncode == -signal.SIGKILL
            return
        time.sleep(0.01)
    process.kill()
    process.wait(timeout=30)
    pytest.fail(f"kill condition ({what}) never became true")


@pytest.fixture(scope="module")
def workflow_file(tmp_path_factory):
    target = tmp_path_factory.mktemp("chaos-spec") / "workflow.json"
    target.write_text(json.dumps(tiny_payload()), encoding="utf-8")
    return target


@pytest.fixture(scope="module")
def oneshot(tmp_path_factory, workflow_file):
    """An uninterrupted reference run (fresh workdir, no delays)."""
    workdir = tmp_path_factory.mktemp("chaos-oneshot")
    proc = subprocess.run(
        runner_command(workflow_file, workdir),
        env=runner_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return workdir


def resume_and_compare(workflow_file, workdir, oneshot_workdir):
    """Resume the killed run and assert oneshot-identical end state."""
    db_path = workdir_paths(workdir)["rundb"]
    interrupted_before = completed_step_count(db_path)
    proc = subprocess.run(
        runner_command(workflow_file, workdir),
        env=runner_env(),  # no delay knobs: resume runs at full speed
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert completed_step_count(db_path) == 4

    # Steps completed before the kill were resumed, not re-executed.
    assert f"{interrupted_before} skipped" in proc.stdout or "skipped" in proc.stdout

    # Same RunDB end-state: config hashes, deterministic metrics, and
    # content-level artifact SHA-256s all match the uninterrupted run.
    assert end_state(workdir) == end_state(oneshot_workdir)

    # Bit-identical artifacts, asserted directly on the stores too.
    chaos_fp = ArtifactRegistry(workdir_paths(workdir)["store"]).fingerprint(
        "chaos-model:wf"
    )
    oneshot_fp = ArtifactRegistry(
        workdir_paths(oneshot_workdir)["store"]
    ).fingerprint("chaos-model:wf")
    assert chaos_fp == oneshot_fp

    # Provenance stays honest: the killed run is recorded as interrupted.
    with RunDB(db_path) as db:
        outcomes = [run.outcome for run in db.runs()]
    assert "interrupted" in outcomes
    assert outcomes[-1] == "completed"


@pytest.mark.parametrize("chaos_seed", [101, 202])
def test_sigkill_at_step_boundary_then_resume(
    tmp_path, workflow_file, oneshot, chaos_seed
):
    """Kill right after a randomized number of steps completed."""
    kill_after = random.Random(chaos_seed).randint(1, 3)
    workdir = tmp_path / "wd"
    db_path = workdir_paths(workdir)["rundb"]
    process = subprocess.Popen(
        runner_command(workflow_file, workdir),
        env=runner_env(REPRO_ORCH_TEST_DELAY_S=str(STEP_DELAY_S)),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        kill_when(
            process,
            lambda: completed_step_count(db_path) >= kill_after,
            f"{kill_after} step(s) completed",
        )
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    completed = completed_step_count(db_path)
    assert kill_after <= completed < 4, "kill landed mid-workflow"
    resume_and_compare(workflow_file, workdir, oneshot)


def test_sigkill_mid_step_then_resume(tmp_path, workflow_file, oneshot):
    """Kill while the train step is executing (inside the step body)."""
    workdir = tmp_path / "wd"
    db_path = workdir_paths(workdir)["rundb"]
    process = subprocess.Popen(
        runner_command(workflow_file, workdir),
        env=runner_env(
            REPRO_ORCH_TEST_DELAY_S="5.0",
            REPRO_ORCH_TEST_DELAY_STEP="train",
        ),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        kill_when(
            process,
            lambda: step_is_running(db_path, "train"),
            "train step running",
        )
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
    # the killed step never completed; at most prep finished
    assert completed_step_count(db_path) < 4
    with RunDB(db_path) as db:
        assert db.latest_completed("train") is None
    resume_and_compare(workflow_file, workdir, oneshot)
