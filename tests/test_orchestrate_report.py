"""Golden-gated ``repro status`` and ``repro report`` output.

A fixed-seed tiny workflow is run once, one step's config is perturbed,
and the workflow is run again; the status view (clean + "what changed")
and the markdown QA report are then pinned against ``tests/golden/``.
Volatile output -- the workdir path, wall times, git revisions -- is
scrubbed before comparison.  Regenerate intentionally-changed pins
with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_orchestrate_report.py
"""

import os
import re
from pathlib import Path

import pytest

from repro.orchestrate import (
    WorkflowSpec,
    build_report,
    markdown_to_html,
    run_workflow,
    workflow_status,
)

pytest.importorskip("yaml")

GOLDEN_DIR = Path(__file__).parent / "golden"
STATUS_GOLDEN = GOLDEN_DIR / "workflow_status.txt"
STATUS_CHANGED_GOLDEN = GOLDEN_DIR / "workflow_status_changed.txt"
REPORT_GOLDEN = GOLDEN_DIR / "workflow_report.md"


def base_payload():
    return {
        "name": "golden",
        "seed": 20250808,
        "steps": [
            {
                "name": "prep",
                "kind": "dataset",
                "config": {"dataset": "mnist", "scale": 0.01},
            },
            {
                "name": "train",
                "kind": "train",
                "needs": ["prep"],
                "config": {
                    "model": "memhd",
                    "dataset": "mnist",
                    "scale": 0.01,
                    "dimension": 32,
                    "columns": 16,
                    "epochs": 1,
                    "save": "golden-model:wf",
                },
            },
            {
                "name": "grid",
                "kind": "sweep",
                "needs": ["prep"],
                "config": {
                    "spec": {
                        "models": ["memhd"],
                        "datasets": ["mnist"],
                        "dimensions": [32],
                        "columns": [16],
                        "epochs": 1,
                        "scale": 0.01,
                        "seed": 20250808,
                    }
                },
            },
        ],
    }


def perturbed_payload():
    payload = base_payload()
    payload["steps"][1]["config"]["epochs"] = 2  # train config changes
    payload["steps"][2]["config"]["spec"]["dimensions"] = [32, 64]  # sweep grows
    return payload


def scrub(text: str, workdir) -> str:
    """Normalize volatile output: paths, wall times, git revs, padding."""
    text = text.replace(str(workdir), "<WORKDIR>")
    text = re.sub(r"\b[0-9a-f]{40}\b", "<REV>", text)
    text = re.sub(r"\b\d+\.\d+s\b", "<T>", text)
    # Wall-time widths vary run to run; collapse alignment padding so the
    # comparison is about content, not column widths.
    return "\n".join(
        re.sub(r" +", " ", line).rstrip() for line in text.splitlines()
    ) + "\n"


@pytest.fixture(scope="module")
def rendered(tmp_path_factory):
    """Run base + perturbed workflow once; render every gated view."""
    workdir = tmp_path_factory.mktemp("golden-wf")
    base = WorkflowSpec.from_dict(base_payload())
    perturbed = WorkflowSpec.from_dict(perturbed_payload())

    result = run_workflow(base, workdir)
    assert result.ok
    status_clean = workflow_status(base, workdir)
    # Before rerunning: the perturbed spec sees stale steps ("what changed").
    status_changed = workflow_status(perturbed, workdir)
    result = run_workflow(perturbed, workdir)
    assert result.ok
    report = build_report(perturbed, workdir, fmt="markdown")
    return {
        "workdir": workdir,
        "status_clean": scrub(status_clean, workdir),
        "status_changed": scrub(status_changed, workdir),
        "report": scrub(report, workdir),
    }


def check_golden(golden_path: Path, actual: str) -> None:
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(actual, encoding="utf-8")
    assert golden_path.is_file(), (
        f"{golden_path.name} missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    assert actual == golden_path.read_text(encoding="utf-8"), (
        f"output drifted from {golden_path.name}; regenerate with "
        "REPRO_REGEN_GOLDEN=1 if the change is intentional"
    )


def test_status_matches_golden(rendered):
    check_golden(STATUS_GOLDEN, rendered["status_clean"])


def test_status_with_perturbed_config_matches_golden(rendered):
    check_golden(STATUS_CHANGED_GOLDEN, rendered["status_changed"])
    # sanity on the semantics, independent of the pin: the perturbed
    # steps are stale, the untouched one is not
    assert "stale: config changed" in rendered["status_changed"]
    assert re.search(r"prep.*up-to-date", rendered["status_changed"])


def test_report_matches_golden(rendered):
    check_golden(REPORT_GOLDEN, rendered["report"])


def test_report_what_changed_section(rendered):
    """The perturbation is visible in the report without reading the pin."""
    report = rendered["report"]
    assert "## What changed" in report
    assert "epochs: 1 -> 2" in report
    assert "sweep store diff" in report  # format_store_diff rendered


def test_html_report_renders(rendered):
    html = build_report(
        WorkflowSpec.from_dict(perturbed_payload()), rendered["workdir"], fmt="html"
    )
    assert html.startswith("<!DOCTYPE html>")
    assert "<h1>Workflow report: golden</h1>" in html
    assert "<table>" in html and "<pre>" in html
    assert "&lt;" not in html.split("<body>")[0]  # head stays clean


def test_markdown_to_html_escapes_content():
    html = markdown_to_html("# T\n\n<script>alert(1)</script>\n")
    assert "<script>" not in html.split("<body>")[1].replace("</script>", "")
    assert "&lt;script&gt;" in html
