"""End-to-end workflow execution: run, resume-skip, force, selective rerun."""

import copy
import json

import pytest

from repro.cli import main
from repro.io.registry import ArtifactRegistry
from repro.orchestrate import (
    RunDB,
    WorkflowSpec,
    run_workflow,
    workdir_paths,
)

pytest.importorskip("yaml")


def tiny_payload():
    return {
        "name": "tiny",
        "seed": 5,
        "steps": [
            {
                "name": "prep",
                "kind": "dataset",
                "config": {"dataset": "mnist", "scale": 0.01},
            },
            {
                "name": "train",
                "kind": "train",
                "needs": ["prep"],
                "config": {
                    "model": "memhd",
                    "dataset": "mnist",
                    "scale": 0.01,
                    "dimension": 32,
                    "columns": 16,
                    "epochs": 1,
                    "save": "tiny-model:wf",
                },
            },
            {
                "name": "grid",
                "kind": "sweep",
                "needs": ["prep"],
                "config": {
                    "spec": {
                        "models": ["memhd"],
                        "datasets": ["mnist"],
                        "dimensions": [32],
                        "columns": [16],
                        "epochs": 1,
                        "scale": 0.01,
                        "seed": 5,
                    }
                },
            },
            {
                "name": "bench",
                "kind": "bench",
                "needs": ["train"],
                "config": {
                    "model": "tiny-model:wf",
                    "dataset": "mnist",
                    "scale": 0.01,
                    "engines": ["float", "packed"],
                },
            },
            {
                "name": "smoke",
                "kind": "serve-smoke",
                "needs": ["bench"],
                "config": {
                    "model": "tiny-model:wf",
                    "dataset": "mnist",
                    "scale": 0.01,
                    "engine": "packed",
                    "requests": 2,
                    "batch": 2,
                },
            },
        ],
    }


def tiny_spec(**tweaks):
    payload = tiny_payload()
    payload.update(tweaks)
    return WorkflowSpec.from_dict(payload)


def actions(result):
    return {step.name: step.action for step in result.steps}


def end_state(workdir):
    with RunDB(workdir_paths(workdir)["rundb"]) as db:
        return db.end_state()


@pytest.fixture(scope="module")
def completed_workdir(tmp_path_factory):
    """One full execution shared by the read-only assertions below."""
    workdir = tmp_path_factory.mktemp("wf-run")
    result = run_workflow(tiny_spec(), workdir)
    return workdir, result


def test_first_run_executes_every_step(completed_workdir):
    _, result = completed_workdir
    assert result.ok
    assert actions(result) == {
        name: "executed" for name in ("prep", "train", "grid", "bench", "smoke")
    }
    assert "5 executed" in result.summary()


def test_run_populates_registry_and_stores(completed_workdir):
    workdir, _ = completed_workdir
    paths = workdir_paths(workdir)
    registry = ArtifactRegistry(paths["store"])
    assert registry.tags("tiny-model") == ["wf"]
    assert list(paths["sweeps"].glob("*.jsonl"))
    assert paths["rundb"].is_file()


def test_run_records_full_provenance(completed_workdir):
    workdir, _ = completed_workdir
    state = end_state(workdir)
    assert set(state) == {"prep", "train", "grid", "bench", "smoke"}
    # the train step links the dataset it consumed to the checkpoint it made
    train = state["train"]
    assert [a["name"] for a in train["artifacts"]["consumed"]] == [
        "dataset:mnist?scale=0.01&seed=5"
    ]
    assert [a["name"] for a in train["artifacts"]["produced"]] == [
        "checkpoint:tiny-model:wf"
    ]
    # metrics carry no timing noise
    for step in state.values():
        for metric in step["metrics"]:
            assert "elapsed" not in metric and "queries_per_s" not in metric
    assert state["smoke"]["metrics"]["bit_exact"] is True


def test_step_rows_carry_tails_and_git_rev(completed_workdir):
    workdir, _ = completed_workdir
    with RunDB(workdir_paths(workdir)["rundb"]) as db:
        record = db.latest_completed("train")
    assert "saved tiny-model:wf" in record.stdout_tail
    assert record.config["epochs"] == 1
    assert record.wall_s is not None and record.wall_s > 0


def test_second_run_skips_everything(completed_workdir):
    workdir, _ = completed_workdir
    before = end_state(workdir)
    result = run_workflow(tiny_spec(), workdir)
    assert result.ok
    assert set(actions(result).values()) == {"skipped"}
    assert end_state(workdir) == before


def test_end_state_deterministic_across_workdirs(completed_workdir, tmp_path):
    """Same spec, fresh workdir: identical artifact hashes and metrics.

    This is the property the chaos tests build on -- reruns are
    content-identical, so interrupted+resumed can be compared to oneshot.
    """
    workdir, _ = completed_workdir
    other = tmp_path / "other"
    result = run_workflow(tiny_spec(), other)
    assert result.ok
    assert end_state(other) == end_state(workdir)


def test_force_reruns_all(tmp_path):
    run_workflow(tiny_spec(), tmp_path)
    result = run_workflow(tiny_spec(), tmp_path, force=True)
    assert result.ok
    assert set(actions(result).values()) == {"executed"}


def test_perturbed_config_reruns_only_affected_steps(tmp_path):
    run_workflow(tiny_spec(), tmp_path)
    payload = tiny_payload()
    payload["steps"][1]["config"]["epochs"] = 2  # perturb the train step
    result = run_workflow(WorkflowSpec.from_dict(payload), tmp_path)
    assert result.ok
    what = actions(result)
    assert what["prep"] == "skipped"  # untouched upstream
    assert what["grid"] == "skipped"  # independent branch
    assert what["train"] == "executed"  # config changed
    # bench/smoke configs are unchanged, but their consumed checkpoint
    # now fingerprints differently -> artifact-driven rerun
    assert what["bench"] == "executed"
    assert what["smoke"] == "executed"


def test_deleted_artifact_triggers_rerun(tmp_path):
    run_workflow(tiny_spec(), tmp_path)
    paths = workdir_paths(tmp_path)
    ArtifactRegistry(paths["store"]).remove("tiny-model:wf")
    result = run_workflow(tiny_spec(), tmp_path)
    assert result.ok
    what = actions(result)
    assert what["prep"] == "skipped" and what["grid"] == "skipped"
    assert what["train"] == "executed"  # produced artifact vanished


def test_failed_step_blocks_dependents_and_fails_run(tmp_path):
    payload = tiny_payload()
    # bench addresses a model nobody trains -> the step itself fails
    payload["steps"] = [
        payload["steps"][0],
        {
            "name": "bench",
            "kind": "bench",
            "needs": ["prep"],
            "config": {"model": "ghost:wf", "dataset": "mnist", "scale": 0.01},
        },
        {
            "name": "smoke",
            "kind": "serve-smoke",
            "needs": ["bench"],
            "config": {
                "model": "ghost:wf",
                "dataset": "mnist",
                "scale": 0.01,
            },
        },
    ]
    result = run_workflow(WorkflowSpec.from_dict(payload), tmp_path)
    assert not result.ok
    what = actions(result)
    assert what == {"prep": "executed", "bench": "failed", "smoke": "blocked"}
    failed = next(step for step in result.steps if step.name == "bench")
    assert "ghost" in failed.error
    with RunDB(workdir_paths(tmp_path)["rundb"]) as db:
        record = db.step_rows()[-1]
        assert record.step == "bench" and record.outcome == "failed"
        assert "ghost" in (record.error or "")
        assert db.runs()[-1].outcome == "failed"


def test_worker_pool_matches_inline_end_state(completed_workdir, tmp_path):
    workdir, _ = completed_workdir
    result = run_workflow(tiny_spec(), tmp_path, workers=2)
    assert result.ok
    assert set(actions(result).values()) == {"executed"}
    assert end_state(tmp_path) == end_state(workdir)


# --------------------------------------------------------------------------
# CLI entry points
# --------------------------------------------------------------------------
def write_workflow(tmp_path, payload):
    target = tmp_path / "workflow.json"
    target.write_text(json.dumps(payload), encoding="utf-8")
    return str(target)


def test_cli_run_and_rerun(tmp_path, capsys):
    workflow = write_workflow(tmp_path, tiny_payload())
    workdir = str(tmp_path / "wd")
    assert main(["run", workflow, "--workdir", workdir]) == 0
    output = capsys.readouterr().out
    assert "5 executed" in output
    assert main(["run", workflow, "--workdir", workdir]) == 0
    assert "5 skipped" in capsys.readouterr().out


def test_cli_run_invalid_workflow_exits_2(tmp_path, capsys):
    payload = tiny_payload()
    payload["steps"][0]["config"]["bogus"] = 1
    workflow = write_workflow(tmp_path, payload)
    assert main(["run", workflow]) == 2
    assert "bogus" in capsys.readouterr().err


def test_cli_run_missing_workflow_exits_2(capsys):
    assert main(["run", "/no/such/wf.yml"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_cli_run_failed_step_exits_1(tmp_path, capsys):
    payload = copy.deepcopy(tiny_payload())
    payload["steps"] = [
        {
            "name": "bench",
            "kind": "bench",
            "config": {"model": "ghost:wf", "dataset": "mnist", "scale": 0.01},
        }
    ]
    workflow = write_workflow(tmp_path, payload)
    assert main(["run", workflow, "--workdir", str(tmp_path / "wd")]) == 1
    captured = capsys.readouterr()
    assert "failed step bench" in captured.err


def test_cli_status_without_runs_exits_0(tmp_path, capsys):
    workflow = write_workflow(tmp_path, tiny_payload())
    assert main(["status", workflow, "--workdir", str(tmp_path / "wd")]) == 0
    assert "no runs recorded" in capsys.readouterr().out


def test_cli_report_without_runs_exits_0(tmp_path, capsys):
    workflow = write_workflow(tmp_path, tiny_payload())
    assert main(["report", workflow, "--workdir", str(tmp_path / "wd")]) == 0
    assert "No runs recorded" in capsys.readouterr().out
