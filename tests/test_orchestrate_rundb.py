"""RunDB: provenance rows, crash-stale handling, end-state extraction."""

import sqlite3

import pytest

from repro.orchestrate import RunDB, is_volatile_metric


@pytest.fixture()
def db(tmp_path):
    with RunDB(tmp_path / "runs.sqlite") as database:
        yield database


def test_creates_parent_directories(tmp_path):
    nested = tmp_path / "a" / "b" / "runs.sqlite"
    with RunDB(nested):
        pass
    assert nested.is_file()


def test_run_and_step_round_trip(db):
    run_id = db.begin_run("wf", "hash0", "rev0")
    step_id = db.begin_step(run_id, "prep", "dataset", "cfg0", {"x": 1}, "rev0")
    db.record_artifacts(
        step_id, "produced", [{"name": "dataset:d", "path": "", "sha256": "s1"}]
    )
    db.finish_step(
        step_id,
        "completed",
        wall_s=0.5,
        metrics={"rows": 10},
        stdout_tail="out",
        stderr_tail="err",
    )
    db.finish_run(run_id, "completed")

    (run,) = db.runs()
    assert run.outcome == "completed"
    assert run.workflow == "wf"
    assert run.finished_unix is not None

    record = db.latest_completed("prep")
    assert record is not None
    assert record.config == {"x": 1}
    assert record.metrics == {"rows": 10}
    assert record.stdout_tail == "out"
    assert record.wall_s == 0.5
    (artifact,) = db.artifacts_for(record.id)
    assert (artifact.direction, artifact.name, artifact.sha256) == (
        "produced",
        "dataset:d",
        "s1",
    )


def test_latest_completed_ignores_failed_and_running(db):
    run_id = db.begin_run("wf", "h", None)
    ok = db.begin_step(run_id, "s", "dataset", "cfg-ok", {}, None)
    db.finish_step(ok, "completed")
    failed = db.begin_step(run_id, "s", "dataset", "cfg-fail", {}, None)
    db.finish_step(failed, "failed", error="boom")
    db.begin_step(run_id, "s", "dataset", "cfg-run", {}, None)  # left running

    record = db.latest_completed("s")
    assert record is not None and record.config_hash == "cfg-ok"


def test_begin_run_marks_stale_running_rows_interrupted(db):
    run_id = db.begin_run("wf", "h", None)
    db.begin_step(run_id, "s", "dataset", "cfg", {}, None)
    # Simulate SIGKILL: neither the step nor the run was ever finished.
    db.begin_run("wf", "h", None)
    runs = db.runs()
    assert runs[0].outcome == "interrupted"
    assert runs[1].outcome == "running"
    (step,) = db.step_rows()
    assert step.outcome == "interrupted"
    assert db.latest_completed("s") is None


def test_previous_completed(db):
    run_id = db.begin_run("wf", "h", None)
    first = db.begin_step(run_id, "s", "dataset", "cfg-a", {}, None)
    db.finish_step(first, "completed")
    second = db.begin_step(run_id, "s", "dataset", "cfg-b", {}, None)
    db.finish_step(second, "completed")

    latest = db.latest_completed("s")
    assert latest.config_hash == "cfg-b"
    previous = db.previous_completed("s", latest.id)
    assert previous.config_hash == "cfg-a"
    assert db.previous_completed("s", previous.id) is None


def test_record_artifacts_validates_direction(db):
    run_id = db.begin_run("wf", "h", None)
    step_id = db.begin_step(run_id, "s", "dataset", "c", {}, None)
    with pytest.raises(ValueError, match="direction"):
        db.record_artifacts(step_id, "sideways", [])


def test_end_state_uses_latest_completed_and_drops_timings(db):
    run_id = db.begin_run("wf", "h", None)
    old = db.begin_step(run_id, "s", "train", "cfg-old", {}, None)
    db.finish_step(old, "completed", metrics={"test_accuracy": 0.1})
    new = db.begin_step(run_id, "s", "train", "cfg-new", {}, None)
    db.record_artifacts(
        new,
        "produced",
        [
            {"name": "checkpoint:m:b", "path": "/p", "sha256": "zz"},
            {"name": "checkpoint:m:a", "path": "/p", "sha256": "aa"},
        ],
    )
    db.finish_step(
        new,
        "completed",
        metrics={
            "test_accuracy": 0.5,
            "train_elapsed_s": 1.23,
            "queries_per_s_float": 99.0,
            "wall_total": 4.0,
        },
    )

    state = db.end_state()
    assert set(state) == {"s"}
    assert state["s"]["config_hash"] == "cfg-new"
    assert state["s"]["metrics"] == {"test_accuracy": 0.5}
    # artifact edges are sorted by name for deterministic comparison
    assert [a["name"] for a in state["s"]["artifacts"]["produced"]] == [
        "checkpoint:m:a",
        "checkpoint:m:b",
    ]


def test_end_state_identical_across_extra_runs(db):
    """More runs (resume after a crash) must not change the end state."""
    run_id = db.begin_run("wf", "h", None)
    step = db.begin_step(run_id, "s", "dataset", "cfg", {}, None)
    db.finish_step(step, "completed", metrics={"rows": 5})
    db.finish_run(run_id, "completed")
    baseline = db.end_state()

    for _ in range(3):  # crashed/no-op runs add rows but no completions
        extra = db.begin_run("wf", "h", None)
        db.finish_run(extra, "completed")
    assert db.end_state() == baseline


def test_commits_are_visible_to_other_connections(db, tmp_path):
    """Every write commits immediately (the crash-safety property)."""
    run_id = db.begin_run("wf", "h", None)
    db.begin_step(run_id, "s", "dataset", "cfg", {}, None)
    other = sqlite3.connect(str(tmp_path / "runs.sqlite"))
    try:
        (count,) = other.execute("SELECT COUNT(*) FROM steps").fetchone()
    finally:
        other.close()
    assert count == 1


def test_is_volatile_metric():
    assert is_volatile_metric("elapsed_s")
    assert is_volatile_metric("train_elapsed_s")
    assert is_volatile_metric("queries_per_s_packed")
    assert is_volatile_metric("wall_s")
    assert not is_volatile_metric("test_accuracy")
    assert not is_volatile_metric("memory_kib")
    # Serving-load measurements are volatile; their accounting is not.
    assert is_volatile_metric("p99_ms")
    assert is_volatile_metric("qps")
    assert is_volatile_metric("duration_s")
    assert not is_volatile_metric("requests")
    assert not is_volatile_metric("error_rate")
    assert not is_volatile_metric("predictions_sha256")
    # Exact-name matching, not substrings: "firewall_rules" contains
    # "wall" and "overall_score" contains "all", yet neither is timing.
    assert not is_volatile_metric("firewall_rules")
    assert not is_volatile_metric("overall_score")
