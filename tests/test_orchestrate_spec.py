"""Workflow spec layer: strict parsing, DAG validation, canonical hashing."""

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.orchestrate import (
    OrchestrationError,
    WorkflowSpec,
    parse_workflow,
)

yaml = pytest.importorskip("yaml")


def minimal_payload(**overrides):
    payload = {
        "name": "tiny",
        "seed": 3,
        "steps": [
            {"name": "prep", "kind": "dataset", "config": {"dataset": "mnist"}},
        ],
    }
    payload.update(overrides)
    return payload


def train_step(name="fit", needs=("prep",), **config):
    base = {
        "model": "memhd",
        "dataset": "mnist",
        "save": "tiny-model:wf",
    }
    base.update(config)
    return {"name": name, "kind": "train", "needs": list(needs), "config": base}


# --------------------------------------------------------------------------
# Parsing and defaults
# --------------------------------------------------------------------------
def test_parse_minimal_applies_defaults():
    spec = WorkflowSpec.from_dict(minimal_payload())
    step = spec.step("prep")
    assert step.kind == "dataset"
    assert step.config["scale"] == 0.02  # schema default
    assert step.config["seed"] == 3  # workflow seed substituted
    assert step.needs == ()


def test_step_seed_overrides_workflow_seed():
    payload = minimal_payload()
    payload["steps"][0]["config"]["seed"] = 11
    spec = WorkflowSpec.from_dict(payload)
    assert spec.step("prep").config["seed"] == 11


def test_workflow_defaults():
    payload = minimal_payload()
    del payload["seed"]
    spec = WorkflowSpec.from_dict(payload)
    assert spec.seed == 0
    assert spec.workdir is None


# --------------------------------------------------------------------------
# Strict-by-default: unknown anything fails loudly, naming the offender
# --------------------------------------------------------------------------
def test_unknown_workflow_key_rejected():
    with pytest.raises(OrchestrationError, match="sched"):
        WorkflowSpec.from_dict(minimal_payload(sched="hourly"))


def test_unknown_step_key_rejected():
    payload = minimal_payload()
    payload["steps"][0]["retries"] = 3
    with pytest.raises(OrchestrationError, match="retries"):
        WorkflowSpec.from_dict(payload)


def test_unknown_config_key_rejected():
    payload = minimal_payload()
    payload["steps"][0]["config"]["gpu"] = True
    with pytest.raises(OrchestrationError, match="gpu"):
        WorkflowSpec.from_dict(payload)


def test_unknown_kind_rejected():
    payload = minimal_payload()
    payload["steps"][0]["kind"] = "deploy"
    with pytest.raises(OrchestrationError, match="deploy"):
        WorkflowSpec.from_dict(payload)


def test_missing_required_config_key_rejected():
    payload = minimal_payload()
    payload["steps"].append(
        {"name": "fit", "kind": "train", "config": {"model": "memhd"}}
    )
    with pytest.raises(OrchestrationError, match="requires"):
        WorkflowSpec.from_dict(payload)


def test_unknown_dataset_rejected():
    payload = minimal_payload()
    payload["steps"][0]["config"]["dataset"] = "imagenet"
    with pytest.raises(OrchestrationError, match="imagenet"):
        WorkflowSpec.from_dict(payload)


def test_train_save_requires_explicit_tag():
    payload = minimal_payload()
    payload["steps"].append(train_step(save="tiny-model"))
    with pytest.raises(OrchestrationError, match="name:tag"):
        WorkflowSpec.from_dict(payload)


def test_nested_sweep_spec_is_strict():
    payload = minimal_payload()
    payload["steps"].append(
        {
            "name": "grid",
            "kind": "sweep",
            "config": {"spec": {"models": ["memhd"], "bogus_axis": [1]}},
        }
    )
    with pytest.raises(OrchestrationError, match="bogus_axis"):
        WorkflowSpec.from_dict(payload)


def test_duplicate_step_names_rejected():
    payload = minimal_payload()
    payload["steps"].append(dict(payload["steps"][0]))
    with pytest.raises(OrchestrationError, match="duplicate"):
        WorkflowSpec.from_dict(payload)


def test_unknown_needs_target_rejected():
    payload = minimal_payload()
    payload["steps"].append(train_step(needs=("ghost",)))
    with pytest.raises(OrchestrationError, match="ghost"):
        WorkflowSpec.from_dict(payload)


def test_self_need_rejected():
    payload = minimal_payload()
    payload["steps"][0]["needs"] = ["prep"]
    with pytest.raises(OrchestrationError, match="itself"):
        WorkflowSpec.from_dict(payload)


def test_empty_steps_rejected():
    with pytest.raises(OrchestrationError, match="non-empty"):
        WorkflowSpec.from_dict(minimal_payload(steps=[]))


def test_non_integer_seed_rejected():
    with pytest.raises(OrchestrationError, match="seed"):
        WorkflowSpec.from_dict(minimal_payload(seed="lucky"))


# --------------------------------------------------------------------------
# DAG validation
# --------------------------------------------------------------------------
def cyclic_payload():
    return {
        "name": "loop",
        "steps": [
            {
                "name": "a",
                "kind": "dataset",
                "needs": ["b"],
                "config": {"dataset": "mnist"},
            },
            {
                "name": "b",
                "kind": "dataset",
                "needs": ["a"],
                "config": {"dataset": "mnist"},
            },
        ],
    }


def test_cyclic_needs_rejected_with_named_cycle():
    with pytest.raises(OrchestrationError) as excinfo:
        WorkflowSpec.from_dict(cyclic_payload())
    message = str(excinfo.value)
    assert "cyclic" in message
    assert "a" in message and "b" in message and "->" in message


def test_three_step_cycle_rejected():
    payload = cyclic_payload()
    payload["steps"][0]["needs"] = ["c"]
    payload["steps"].append(
        {
            "name": "c",
            "kind": "dataset",
            "needs": ["b"],
            "config": {"dataset": "mnist"},
        }
    )
    with pytest.raises(OrchestrationError, match="cyclic"):
        WorkflowSpec.from_dict(payload)


def test_execution_order_respects_needs():
    payload = minimal_payload()
    payload["steps"].append(train_step())
    spec = WorkflowSpec.from_dict(payload)
    order = [step.name for step in spec.execution_order()]
    assert order.index("prep") < order.index("fit")


# --------------------------------------------------------------------------
# Canonical hashing
# --------------------------------------------------------------------------
def test_explicit_defaults_hash_like_omitted():
    implicit = WorkflowSpec.from_dict(minimal_payload())
    payload = minimal_payload()
    payload["steps"][0]["config"]["scale"] = 0.02  # the schema default
    payload["steps"][0]["config"]["seed"] = 3  # the workflow seed
    explicit = WorkflowSpec.from_dict(payload)
    assert implicit.step("prep").config_hash == explicit.step("prep").config_hash
    assert implicit.workflow_hash == explicit.workflow_hash


def test_config_change_changes_hash():
    base = WorkflowSpec.from_dict(minimal_payload())
    payload = minimal_payload()
    payload["steps"][0]["config"]["scale"] = 0.03
    changed = WorkflowSpec.from_dict(payload)
    assert base.step("prep").config_hash != changed.step("prep").config_hash
    assert base.workflow_hash != changed.workflow_hash


def test_needs_order_does_not_change_hash():
    payload = minimal_payload()
    payload["steps"].append(
        {"name": "prep2", "kind": "dataset", "config": {"dataset": "mnist"}}
    )
    payload["steps"].append(train_step(needs=("prep", "prep2")))
    forward = WorkflowSpec.from_dict(payload)
    payload["steps"][-1]["needs"] = ["prep2", "prep"]
    backward = WorkflowSpec.from_dict(payload)
    assert forward.step("fit").config_hash == backward.step("fit").config_hash


_TRAIN_OPTIONALS = {
    "scale": st.sampled_from([0.01, 0.02, 0.5]),
    "seed": st.integers(min_value=0, max_value=99),
    "dimension": st.sampled_from([32, 64, 128]),
    "columns": st.sampled_from([16, 32, 128]),
    "epochs": st.integers(min_value=1, max_value=9),
    "learning_rate": st.sampled_from([0.01, 0.05]),
    "cluster_ratio": st.sampled_from([0.5, 0.8]),
    "init_method": st.sampled_from(["clustering", "random"]),
    "id_levels": st.sampled_from([16, 32]),
}


@st.composite
def train_configs(draw):
    keys = draw(
        st.lists(
            st.sampled_from(sorted(_TRAIN_OPTIONALS)), unique=True, max_size=9
        )
    )
    return {key: draw(_TRAIN_OPTIONALS[key]) for key in keys}


@settings(max_examples=50, deadline=None)
@given(config=train_configs(), data=st.data())
def test_hash_invariant_under_key_order(config, data):
    """Any insertion order of the same config keys hashes identically."""
    payload = minimal_payload()
    payload["steps"].append(train_step(**config))
    reference = WorkflowSpec.from_dict(payload).step("fit").config_hash

    shuffled_keys = data.draw(st.permutations(sorted(config)))
    shuffled = {key: config[key] for key in shuffled_keys}
    payload = minimal_payload()
    payload["steps"].append(train_step(**shuffled))
    assert WorkflowSpec.from_dict(payload).step("fit").config_hash == reference


@settings(max_examples=25, deadline=None)
@given(config=train_configs())
def test_hash_roundtrips_through_yaml(config, tmp_path_factory):
    """YAML serialize -> parse produces the same canonical hashes."""
    payload = minimal_payload()
    payload["steps"].append(train_step(**config))
    direct = WorkflowSpec.from_dict(payload)
    target = tmp_path_factory.mktemp("wf") / "workflow.yml"
    target.write_text(yaml.safe_dump(payload), encoding="utf-8")
    parsed = parse_workflow(target)
    assert parsed.workflow_hash == direct.workflow_hash
    assert parsed.step_hashes() == direct.step_hashes()


def test_hash_stable_across_process_boundaries(tmp_path):
    """A fresh interpreter (different hash randomization) agrees on hashes."""
    payload = minimal_payload()
    payload["steps"].append(train_step(dimension=64, epochs=2))
    local = WorkflowSpec.from_dict(payload)
    workflow_file = tmp_path / "workflow.json"
    workflow_file.write_text(json.dumps(payload), encoding="utf-8")

    script = (
        "import json, sys\n"
        "from repro.orchestrate import parse_workflow\n"
        f"spec = parse_workflow({str(workflow_file)!r})\n"
        "print(json.dumps({'workflow': spec.workflow_hash,"
        " 'steps': spec.step_hashes()}))\n"
    )
    src_root = str(Path(repro.__file__).resolve().parents[1])
    for hashseed in ("0", "4242"):
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": src_root,
                "PYTHONHASHSEED": hashseed,
                "PATH": "/usr/bin:/bin",
            },
        )
        assert proc.returncode == 0, proc.stderr
        remote = json.loads(proc.stdout)
        assert remote["workflow"] == local.workflow_hash
        assert remote["steps"] == local.step_hashes()


# --------------------------------------------------------------------------
# File parsing
# --------------------------------------------------------------------------
def test_parse_yaml_and_json_agree(tmp_path):
    payload = minimal_payload()
    yaml_file = tmp_path / "wf.yml"
    yaml_file.write_text(yaml.safe_dump(payload), encoding="utf-8")
    json_file = tmp_path / "wf.json"
    json_file.write_text(json.dumps(payload), encoding="utf-8")
    assert (
        parse_workflow(yaml_file).workflow_hash
        == parse_workflow(json_file).workflow_hash
    )


def test_parse_missing_file_raises():
    with pytest.raises(OrchestrationError, match="cannot read"):
        parse_workflow("/no/such/workflow.yml")


def test_parse_invalid_yaml_raises(tmp_path):
    bad = tmp_path / "bad.yml"
    bad.write_text("steps: [unclosed", encoding="utf-8")
    with pytest.raises(OrchestrationError, match="invalid YAML"):
        parse_workflow(bad)


def test_parse_invalid_json_raises(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{", encoding="utf-8")
    with pytest.raises(OrchestrationError, match="invalid JSON"):
        parse_workflow(bad)


def test_example_workflow_parses():
    example = Path(__file__).resolve().parents[1] / "examples" / "workflow.yml"
    spec = parse_workflow(example)
    assert [step.kind for step in spec.execution_order()] == [
        "dataset",
        "train",
        "sweep",
        "bench",
        "serve-smoke",
    ]
