"""Fuzz harness for the popcount kernel backends.

``repro.hdc._packed_kernels`` ships three implementations of the same
contract -- the self-compiled native kernel (at whatever compiler-flag
tier this machine supports), its pthread-parallel variant, and the pure
numpy reference.  Everything downstream (packed engine, pruned search,
serving) assumes they are *bit-identical*; these tests fuzz that
equivalence over randomized shapes, thread counts and flag tiers, and
prove the silent-numpy-fallback path when no compiler is available.
"""

import numpy as np
import pytest

from repro.hdc import _packed_kernels as kernels


def _random_words(rng, rows, words):
    return rng.integers(0, 2**64, size=(rows, words), dtype=np.uint64)


def _native_only():
    if kernels.backend_name() != "native":
        pytest.skip("native kernel unavailable on this machine")


@pytest.fixture
def restore_backend():
    yield
    kernels.set_backend(None)


# --------------------------------------------------------------------------
# numpy reference vs native, over randomized shapes and threads
# --------------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("threads", [None, 1, 3])
    def test_pair_popcount_fuzz(self, threads, restore_backend):
        _native_only()
        rng = np.random.default_rng(61)
        for _ in range(30):
            n, m, words = rng.integers(0, 20, size=3)
            q = _random_words(rng, int(n), int(words))
            r = _random_words(rng, int(m), int(words))
            kernels.set_backend("native")
            native_and = kernels.and_popcount(q, r, threads=threads)
            native_xor = kernels.xor_popcount(q, r, threads=threads)
            kernels.set_backend("numpy")
            np.testing.assert_array_equal(native_and, kernels.and_popcount(q, r))
            np.testing.assert_array_equal(native_xor, kernels.xor_popcount(q, r))

    def test_env_threads_respected(self, restore_backend, monkeypatch):
        _native_only()
        rng = np.random.default_rng(67)
        q = _random_words(rng, 9, 4)
        r = _random_words(rng, 13, 4)
        kernels.set_backend("numpy")
        expected = kernels.and_popcount(q, r)
        kernels.set_backend("native")
        for env in ("", "1", "4", "auto", "0"):
            monkeypatch.setenv("REPRO_PACKED_THREADS", env)
            np.testing.assert_array_equal(kernels.and_popcount(q, r), expected)

    def test_empty_operands(self):
        empty = np.empty((0, 3), dtype=np.uint64)
        other = np.empty((5, 3), dtype=np.uint64)
        assert kernels.and_popcount(empty, other).shape == (0, 5)
        assert kernels.xor_popcount(other, empty).shape == (5, 0)

    def test_operand_validation(self):
        good = np.zeros((2, 3), dtype=np.uint64)
        with pytest.raises(ValueError):
            kernels.and_popcount(good, np.zeros((2, 4), dtype=np.uint64))
        with pytest.raises(ValueError):
            kernels.and_popcount(good.astype(np.int64), good)
        with pytest.raises(ValueError):
            kernels.xor_popcount(good[0], good)


class TestCompilerTiers:
    @pytest.mark.parametrize("tier", kernels.TIERS)
    def test_pinned_tier_matches_numpy(self, tier, restore_backend, monkeypatch):
        _native_only()
        monkeypatch.setenv("REPRO_PACKED_TIER", tier)
        kernels.reset_native_cache()
        try:
            if kernels.backend_name() != "native":
                pytest.skip(f"tier {tier!r} does not compile on this machine")
            info = kernels.native_build_info()
            assert info is not None and info["tier"] == tier
            rng = np.random.default_rng(71)
            q = _random_words(rng, 7, 5)
            r = _random_words(rng, 11, 5)
            kernels.set_backend("native")
            native = kernels.xor_popcount(q, r)
            kernels.set_backend("numpy")
            np.testing.assert_array_equal(native, kernels.xor_popcount(q, r))
        finally:
            monkeypatch.delenv("REPRO_PACKED_TIER", raising=False)
            kernels.reset_native_cache()

    def test_build_info_reports_tier(self):
        _native_only()
        info = kernels.native_build_info()
        assert info is not None
        assert info["tier"] in kernels.TIERS
        assert "compiler" in info and "library" in info


class TestCompileFailureFallback:
    def test_broken_compiler_falls_back_to_numpy(self, restore_backend, monkeypatch):
        # With CC pointing nowhere the build must fail quietly and every
        # kernel call must keep working through the numpy reference.  (The
        # compile cache is content-addressed by compiler path, so the
        # broken compiler cannot hit a previously built library.)
        monkeypatch.setenv("CC", "/nonexistent/compiler")
        kernels.reset_native_cache()
        try:
            assert kernels.backend_name() == "numpy"
            assert kernels.native_build_info() is None
            assert not kernels.sparse_scan_available()
            rng = np.random.default_rng(73)
            q = _random_words(rng, 4, 2)
            r = _random_words(rng, 6, 2)
            out = kernels.and_popcount(q, r)
            assert out.shape == (4, 6)
            with pytest.raises(RuntimeError):
                kernels.sparse_scan(
                    q,
                    r,
                    np.array([0, 6], dtype=np.int64),
                    np.arange(6, dtype=np.int64),
                    np.array([0, 1, 2, 3, 4], dtype=np.int64),
                    np.zeros(4, dtype=np.int64),
                    np.full(4, np.iinfo(np.int64).min, dtype=np.int64),
                    np.full(4, 6, dtype=np.int64),
                    kernels.OP_AND,
                )
        finally:
            monkeypatch.delenv("CC", raising=False)
            kernels.reset_native_cache()
        # Recovery: with the real toolchain back, the probe runs again.
        assert kernels.backend_name() in ("native", "numpy")

    def test_forcing_native_without_compiler_raises(self, restore_backend, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent/compiler")
        kernels.reset_native_cache()
        try:
            with pytest.raises(RuntimeError):
                kernels.set_backend("native")
        finally:
            monkeypatch.delenv("CC", raising=False)
            kernels.reset_native_cache()


class TestSparseScan:
    def _csr_reference(
        self, q, r, group_start, orig_row, list_start, list_groups, op
    ):
        """Plain-python mirror of the C kernel's contract."""
        n = q.shape[0]
        best_metric = np.full(n, np.iinfo(np.int64).min, dtype=np.int64)
        best_row = np.full(n, len(orig_row), dtype=np.int64)
        combine = np.bitwise_and if op == kernels.OP_AND else np.bitwise_xor
        for i in range(n):
            for g in list_groups[list_start[i]:list_start[i + 1]]:
                for pos in range(group_start[g], group_start[g + 1]):
                    acc = int(np.bitwise_count(combine(q[i], r[pos])).sum())
                    metric = acc if op == kernels.OP_AND else -acc
                    row = int(orig_row[pos])
                    if metric > best_metric[i] or (
                        metric == best_metric[i] and row < best_row[i]
                    ):
                        best_metric[i] = metric
                        best_row[i] = row
        return best_metric, best_row

    @pytest.mark.parametrize("op_name", ["and", "xor"])
    @pytest.mark.parametrize("threads", [None, 1, 4])
    def test_matches_reference(self, op_name, threads):
        _native_only()
        op = kernels.OP_AND if op_name == "and" else kernels.OP_XOR
        rng = np.random.default_rng(79)
        for _ in range(15):
            groups = int(rng.integers(1, 8))
            rows = rng.integers(1, 5, size=groups)
            total = int(rows.sum())
            words = int(rng.integers(1, 6))
            n = int(rng.integers(1, 7))
            q = _random_words(rng, n, words)
            r = _random_words(rng, total, words)
            group_start = np.zeros(groups + 1, dtype=np.int64)
            np.cumsum(rows, out=group_start[1:])
            orig_row = rng.permutation(total).astype(np.int64)
            lists = [
                np.sort(
                    rng.choice(groups, size=rng.integers(1, groups + 1), replace=False)
                )
                for _ in range(n)
            ]
            list_start = np.zeros(n + 1, dtype=np.int64)
            np.cumsum([len(lst) for lst in lists], out=list_start[1:])
            list_groups = np.concatenate(lists).astype(np.int64)
            expect_metric, expect_row = self._csr_reference(
                q, r, group_start, orig_row, list_start, list_groups, op
            )
            best_metric = np.full(n, np.iinfo(np.int64).min, dtype=np.int64)
            best_row = np.full(n, total, dtype=np.int64)
            kernels.sparse_scan(
                q,
                r,
                group_start,
                orig_row,
                list_start,
                list_groups,
                best_metric,
                best_row,
                op,
                threads=threads,
            )
            np.testing.assert_array_equal(best_metric, expect_metric)
            np.testing.assert_array_equal(best_row, expect_row)
