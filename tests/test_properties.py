"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.quantization import mean_threshold_binarize, normalize_rows
from repro.eval.metrics import accuracy, confusion_matrix
from repro.hdc.hypervector import (
    bind,
    binarize,
    bipolarize,
    to_binary,
    to_bipolar,
)
from repro.hdc.memory_model import (
    associative_memory_bits,
    bits_to_kib,
    id_level_encoder_bits,
    projection_encoder_bits,
)
from repro.hdc.similarity import (
    cosine_similarity,
    dot_similarity,
    hamming_distance,
    hamming_similarity,
)
from repro.hdc.packed import (
    pack_binary,
    pack_bipolar,
    packed_dot_similarity,
    packed_hamming_distance,
)
from repro.imc.array import IMCArrayConfig
from repro.imc.mapping import AMStructure, analyze_am_mapping, tile_matrix
from repro.imc.noise import flip_bits


# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------
finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def float_matrices(max_rows=8, max_cols=32):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(1, max_rows), st.integers(1, max_cols)
        ),
        elements=finite_floats,
    )


def binary_matrices(max_rows=16, max_cols=16):
    return hnp.arrays(
        dtype=np.int8,
        shape=st.tuples(st.integers(1, max_rows), st.integers(1, max_cols)),
        elements=st.integers(0, 1),
    )


def bipolar_vectors(max_dim=64):
    return hnp.arrays(
        dtype=np.int8,
        shape=st.integers(1, max_dim),
        elements=st.sampled_from([-1, 1]),
    )


# --------------------------------------------------------------------------
# Hypervector algebra invariants
# --------------------------------------------------------------------------
class TestHypervectorProperties:
    @given(binary_matrices())
    def test_binary_bipolar_roundtrip(self, matrix):
        assert np.array_equal(to_binary(to_bipolar(matrix)), matrix)

    @given(bipolar_vectors())
    def test_bipolar_binary_roundtrip(self, vector):
        assert np.array_equal(to_bipolar(to_binary(vector)), vector)

    @given(bipolar_vectors())
    def test_bind_with_self_is_identity_element(self, vector):
        assert np.array_equal(bind(vector, vector), np.ones_like(vector))

    @given(float_matrices())
    def test_binarize_output_alphabet(self, matrix):
        result = binarize(matrix)
        assert set(np.unique(result)) <= {0, 1}

    @given(float_matrices())
    def test_bipolarize_output_alphabet(self, matrix):
        result = bipolarize(matrix)
        assert set(np.unique(result)) <= {-1, 1}

    @given(float_matrices())
    def test_bipolarize_idempotent_on_sign_pattern(self, matrix):
        once = bipolarize(matrix)
        twice = bipolarize(once.astype(np.float64))
        assert np.array_equal(once, twice)


# --------------------------------------------------------------------------
# Similarity metric invariants
# --------------------------------------------------------------------------
class TestSimilarityProperties:
    @given(bipolar_vectors(max_dim=48), st.data())
    def test_dot_symmetry(self, a, data):
        b = data.draw(
            hnp.arrays(dtype=np.int8, shape=a.shape, elements=st.sampled_from([-1, 1]))
        )
        assert dot_similarity(a, b) == dot_similarity(b, a)

    @given(bipolar_vectors(max_dim=48), st.data())
    def test_dot_hamming_identity_for_bipolar(self, a, data):
        b = data.draw(
            hnp.arrays(dtype=np.int8, shape=a.shape, elements=st.sampled_from([-1, 1]))
        )
        dimension = a.shape[0]
        assert dot_similarity(a, b) == dimension - 2 * hamming_distance(a, b)

    @given(bipolar_vectors(max_dim=48))
    def test_self_similarity_is_maximal(self, a):
        assert dot_similarity(a, a) == a.shape[0]
        assert hamming_similarity(a, a) == 1.0

    @given(float_matrices(max_rows=5, max_cols=16), st.data())
    def test_cosine_bounded(self, queries, data):
        references = data.draw(
            hnp.arrays(
                dtype=np.float64,
                shape=st.tuples(st.integers(1, 5), st.just(queries.shape[1])),
                elements=finite_floats,
            )
        )
        values = np.atleast_2d(cosine_similarity(queries, references))
        assert np.all(values <= 1.0 + 1e-9)
        assert np.all(values >= -1.0 - 1e-9)

    @given(binary_matrices(max_rows=6, max_cols=24), st.data())
    def test_hamming_triangle_inequality(self, matrix, data):
        if matrix.shape[0] < 3:
            return
        a, b, c = matrix[0], matrix[1], matrix[2]
        ab = hamming_distance(a, b)
        bc = hamming_distance(b, c)
        ac = hamming_distance(a, c)
        assert ac <= ab + bc


# --------------------------------------------------------------------------
# Packed-engine equivalence invariants
# --------------------------------------------------------------------------
def _paired_batches(draw, elements, max_rows=6, max_cols=130):
    """Draw two batches sharing a dimension, biased toward odd tail sizes."""
    dimension = draw(st.integers(1, max_cols))

    def batch():
        rows = draw(st.integers(1, max_rows))
        return draw(
            hnp.arrays(dtype=np.int8, shape=(rows, dimension), elements=elements)
        )
    return batch(), batch()


class TestPackedEquivalenceProperties:
    """The bit-packed engine must be bit-exact with the unpacked paths.

    Dimensions are drawn from [1, 130], so single-word, word-aligned and
    odd tail-word (mask-needing) layouts are all exercised.
    """

    @given(st.data())
    def test_binary_dot_matches_unpacked(self, data):
        q, r = _paired_batches(data.draw, st.integers(0, 1))
        expected = q.astype(np.int64) @ r.astype(np.int64).T
        assert np.array_equal(
            packed_dot_similarity(pack_binary(q), pack_binary(r)), expected
        )
        assert np.array_equal(dot_similarity(q, r, packed=True), expected)

    @given(st.data())
    def test_bipolar_dot_matches_unpacked(self, data):
        q, r = _paired_batches(data.draw, st.sampled_from([-1, 1]))
        expected = q.astype(np.int64) @ r.astype(np.int64).T
        assert np.array_equal(
            packed_dot_similarity(pack_bipolar(q), pack_bipolar(r)), expected
        )
        assert np.array_equal(dot_similarity(q, r, packed=True), expected)

    @given(st.data())
    def test_hamming_matches_unpacked(self, data):
        q, r = _paired_batches(data.draw, st.integers(0, 1))
        assert np.array_equal(
            packed_hamming_distance(pack_binary(q), pack_binary(r)),
            hamming_distance(q, r),
        )
        assert np.array_equal(
            hamming_distance(q, r, packed=True), hamming_distance(q, r)
        )

    @given(st.data())
    def test_bipolar_dot_hamming_identity_packed(self, data):
        q, r = _paired_batches(data.draw, st.sampled_from([-1, 1]))
        dimension = q.shape[1]
        dot = packed_dot_similarity(pack_bipolar(q), pack_bipolar(r))
        hamming = packed_hamming_distance(pack_bipolar(q), pack_bipolar(r))
        assert np.array_equal(dot, dimension - 2 * hamming)

    @given(st.data())
    def test_pack_unpack_roundtrip(self, data):
        q, _ = _paired_batches(data.draw, st.integers(0, 1))
        assert np.array_equal(pack_binary(q).unpack(), q)
        bipolar = (2 * q - 1).astype(np.int8)
        assert np.array_equal(pack_bipolar(bipolar).unpack(), bipolar)


# --------------------------------------------------------------------------
# Model-level engine equivalence (all five baselines + MEMHD)
# --------------------------------------------------------------------------
#: Model families whose ``predict`` must be bit-exact across engines.
#: Built through :func:`repro.eval.sweep.build_model`, the same factory the
#: CLI and the sweep workers use, so the property covers the shipped
#: construction path.
PACKED_FAMILIES = ("memhd", "basichdc", "quanthd", "searchd", "lehdc")

#: Dimensions biased toward packed-engine edge cases: single-word,
#: word-aligned, and odd tail-word (mask-needing) layouts.
EDGE_DIMENSIONS = (3, 33, 64, 65, 127, 130)


def _tiny_problem(seed: int):
    """A small random classification problem (features in [0, 1])."""
    gen = np.random.default_rng(seed)
    num_features, num_classes, samples = 8, 3, 30
    train_x = gen.random((samples, num_features))
    train_y = gen.integers(0, num_classes, size=samples).astype(np.int64)
    # Every class needs at least one sample for the clustering init.
    train_y[:num_classes] = np.arange(num_classes)
    test_x = gen.random((12, num_features))
    return num_features, num_classes, train_x, train_y, test_x


class TestModelEngineEquivalence:
    """Differential tests: ``engine="packed"`` must equal ``engine="float"``.

    Covers every model family with a packed path -- MEMHD and all the
    baselines except the floating-point-AM OnlineHD, whose contract is a
    loud rejection -- across odd and tail-word dimensions.
    """

    @pytest.mark.parametrize("family", PACKED_FAMILIES)
    @settings(max_examples=6, deadline=None)
    @given(
        dimension=st.sampled_from(EDGE_DIMENSIONS),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_packed_predictions_match_float(self, family, dimension, seed):
        from repro.eval.sweep import build_model

        num_features, num_classes, train_x, train_y, test_x = _tiny_problem(seed)
        model = build_model(
            family,
            num_features,
            num_classes,
            dimension=dimension,
            columns=max(4, num_classes),
            epochs=1,
            id_levels=4,
            seed=seed % 1000,
        )
        model.fit(train_x, train_y)
        float_labels = model.predict(test_x, engine="float")
        packed_labels = model.predict(test_x, engine="packed")
        assert np.array_equal(float_labels, packed_labels)
        # The default engine is the float path.
        assert np.array_equal(model.predict(test_x), float_labels)
        # Single-query (1-D) inputs take the same paths.
        assert np.array_equal(
            model.predict(test_x[0], engine="packed"),
            model.predict(test_x[0], engine="float"),
        )

    @settings(max_examples=4, deadline=None)
    @given(
        dimension=st.sampled_from(EDGE_DIMENSIONS),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_onlinehd_engine_contract(self, dimension, seed):
        """OnlineHD: float works, packed is rejected loudly (FP memory)."""
        from repro.eval.sweep import build_model

        num_features, num_classes, train_x, train_y, test_x = _tiny_problem(seed)
        model = build_model(
            "onlinehd",
            num_features,
            num_classes,
            dimension=dimension,
            epochs=1,
            seed=seed % 1000,
        )
        model.fit(train_x, train_y)
        assert np.array_equal(
            model.predict(test_x), model.predict(test_x, engine="float")
        )
        with pytest.raises(ValueError, match="packed engine"):
            model.predict(test_x, engine="packed")
        with pytest.raises(ValueError):
            model.predict(test_x, engine="quantum")


# --------------------------------------------------------------------------
# Quantization invariants
# --------------------------------------------------------------------------
class TestQuantizationProperties:
    @given(float_matrices())
    def test_binarize_alphabet_and_shape(self, matrix):
        binary = mean_threshold_binarize(matrix)
        assert binary.shape == matrix.shape
        assert set(np.unique(binary)) <= {0, 1}

    @given(float_matrices())
    def test_row_mean_threshold_never_all_ones(self, matrix):
        binary = mean_threshold_binarize(matrix, "row-mean")
        # With a strict ">" threshold at the row mean, a row with genuine
        # spread can never be entirely ones (the minimum cannot be strictly
        # above the mean).  Numerically-constant rows are excluded.
        spread = matrix.std(axis=1) > 1e-9 * (1.0 + np.abs(matrix).max(axis=1))
        assert not np.any(binary.all(axis=1) & spread)

    @given(float_matrices())
    def test_zscore_rows_have_zero_mean(self, matrix):
        normalized = normalize_rows(matrix, "zscore")
        assert np.allclose(normalized.mean(axis=1), 0.0, atol=1e-6)

    @given(float_matrices())
    def test_l2_rows_have_unit_or_zero_norm(self, matrix):
        normalized = normalize_rows(matrix, "l2")
        norms = np.linalg.norm(normalized, axis=1)
        for original_row, norm in zip(matrix, norms):
            original_norm = np.linalg.norm(original_row)
            if original_norm > 1e-100:
                assert norm == pytest.approx(1.0, rel=1e-6)
            elif original_norm == 0.0:
                assert norm == pytest.approx(0.0)
            # Rows in the denormal range are numerically degenerate; their
            # normalized norm is unspecified beyond being finite.
            else:
                assert np.isfinite(norm)

    @given(float_matrices())
    def test_normalization_never_changes_shape(self, matrix):
        for mode in ("zscore", "l2", "none"):
            assert normalize_rows(matrix, mode).shape == matrix.shape


# --------------------------------------------------------------------------
# Memory model invariants
# --------------------------------------------------------------------------
class TestMemoryModelProperties:
    @given(
        st.integers(1, 4096),
        st.integers(1, 4096),
        st.integers(1, 512),
        st.integers(1, 128),
    )
    def test_memory_formulas_are_monotone(self, f, d, rows, levels):
        assert projection_encoder_bits(f, d) <= projection_encoder_bits(f + 1, d)
        assert id_level_encoder_bits(f, levels, d) >= projection_encoder_bits(f, d)
        assert associative_memory_bits(rows, d) <= associative_memory_bits(rows + 1, d)

    @given(st.integers(0, 2**40))
    def test_bits_to_kib_non_negative_and_linear(self, bits):
        assert bits_to_kib(bits) >= 0
        assert bits_to_kib(2 * bits) == pytest.approx(2 * bits_to_kib(bits))


# --------------------------------------------------------------------------
# Metrics invariants
# --------------------------------------------------------------------------
class TestMetricProperties:
    @given(
        hnp.arrays(dtype=np.int64, shape=st.integers(1, 60), elements=st.integers(0, 5)),
        st.data(),
    )
    def test_confusion_matrix_totals(self, actual, data):
        predicted = data.draw(
            hnp.arrays(dtype=np.int64, shape=actual.shape, elements=st.integers(0, 5))
        )
        matrix = confusion_matrix(predicted, actual, num_classes=6)
        assert matrix.sum() == actual.size
        assert np.trace(matrix) == np.sum(predicted == actual)
        assert accuracy(predicted, actual) == pytest.approx(
            np.trace(matrix) / actual.size
        )

    @given(
        hnp.arrays(dtype=np.int64, shape=st.integers(1, 60), elements=st.integers(0, 5))
    )
    def test_accuracy_of_perfect_prediction(self, labels):
        assert accuracy(labels, labels) == 1.0


# --------------------------------------------------------------------------
# IMC mapping invariants
# --------------------------------------------------------------------------
class TestIMCMappingProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(1, 600),   # structure dimension
        st.integers(1, 300),   # stored vectors
        st.integers(8, 128),   # array rows
        st.integers(8, 128),   # array cols
    )
    def test_analytical_mapping_invariants(self, dimension, vectors, rows, cols):
        structure = AMStructure(dimension, vectors, label="prop")
        array = IMCArrayConfig(rows, cols)
        analysis = analyze_am_mapping(structure, array)
        assert analysis.arrays >= 1
        assert analysis.cycles >= analysis.col_tiles
        assert 0.0 < analysis.utilization <= 1.0
        # Stored cells must fit in the allocated arrays.
        assert analysis.arrays * rows * cols >= dimension * vectors

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 100),
        st.integers(1, 60),
        st.integers(4, 64),
        st.integers(4, 64),
        st.integers(0, 2**31 - 1),
    )
    def test_tiled_mvm_equals_dense_product(self, rows, cols, array_rows, array_cols, seed):
        gen = np.random.default_rng(seed)
        matrix = gen.integers(0, 2, size=(rows, cols)).astype(np.int8)
        tiled = tile_matrix(matrix, IMCArrayConfig(array_rows, array_cols))
        inputs = gen.random(rows)
        assert np.allclose(tiled.mvm(inputs), inputs @ matrix)

    @settings(max_examples=20, deadline=None)
    @given(binary_matrices(max_rows=20, max_cols=20), st.floats(0.0, 1.0), st.integers(0, 2**31 - 1))
    def test_flip_bits_alphabet_preserved(self, matrix, probability, seed):
        flipped = flip_bits(matrix, probability, rng=seed)
        assert flipped.shape == matrix.shape
        assert set(np.unique(flipped)) <= {0, 1}
