"""Differential harness for the centroid-pruned shortlist search.

The pruned engine's one non-negotiable contract is *exactness*: for every
AM layout, alphabet, shortlist width and kernel backend, the winning row
(including the lowest-row-index tie-break) must be bit-identical to the
full scan's ``np.argmax``.  These tests attack that contract from every
angle -- hypothesis-driven random layouts, adversarial duplicate rows
(exact score ties), odd/tail dimensions, single-class AMs, shortlists of
width 1 (maximal escape-hatch pressure) -- and then repeat the comparison
through every model's ``engine="pruned"`` path and the serving pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.basic_hdc import BasicHDC
from repro.baselines.lehdc import LeHDC
from repro.baselines.onlinehd import OnlineHD
from repro.baselines.quanthd import QuantHD
from repro.baselines.searchd import SearcHD
from repro.core.associative_memory import MultiCentroidAM
from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.hdc import _packed_kernels as kernels
from repro.hdc.packed import PackedAM, pack_binary, pack_bipolar
from repro.hdc.pruned import PrunedAM, default_prune_topk
from repro.hdc.similarity import dot_similarity, pruned_top1, top1
from repro.runtime.pipeline import InferencePipeline


# --------------------------------------------------------------------------
# Helpers
# --------------------------------------------------------------------------
def _random_setup(rng, n, groups, rows_per_group, dim, alphabet, duplicates):
    """Random (queries, memory, column_classes) in the requested alphabet."""
    total = groups * rows_per_group
    if alphabet == "binary":
        q = rng.integers(0, 2, (n, dim)).astype(np.int8)
        r = rng.integers(0, 2, (total, dim)).astype(np.int8)
    else:
        q = rng.choice(np.array([-1, 1], dtype=np.int8), (n, dim))
        r = rng.choice(np.array([-1, 1], dtype=np.int8), (total, dim))
    if duplicates and total > 1:
        # Exact-tie pressure: clone rows across group boundaries so the
        # best score is achieved by several rows and only the tie-break
        # decides the winner.
        clones = rng.integers(0, total, size=max(2, total // 2))
        r[clones] = r[clones[0]]
    classes = np.repeat(np.arange(groups), rows_per_group)
    return q, r, classes


def _full_scan_rows(q, r, alphabet):
    """Reference winner: plain argmax over the exact dot-score matrix."""
    scores = np.atleast_2d(dot_similarity(q, r))
    return np.argmax(scores, axis=1)


def _pack(arr, alphabet):
    return pack_binary(arr) if alphabet == "binary" else pack_bipolar(arr)


def _assert_pruned_matches(q, r, classes, alphabet, prune_topk):
    index = PrunedAM(PackedAM(_pack(r, alphabet), classes), prune_topk=prune_topk)
    got = index.predict_columns(_pack(q, alphabet))
    expected = _full_scan_rows(q, r, alphabet)
    np.testing.assert_array_equal(got, expected)
    return index


# --------------------------------------------------------------------------
# Property tests: pruned == full scan, always
# --------------------------------------------------------------------------
class TestPrunedExactness:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(1, 8),
        groups=st.integers(1, 12),
        rows_per_group=st.integers(1, 6),
        dim=st.integers(1, 200),
        alphabet=st.sampled_from(["binary", "bipolar"]),
        duplicates=st.booleans(),
        topk=st.sampled_from([None, 1, 2, 5]),
    )
    def test_argmax_identical_to_full_scan(
        self, seed, n, groups, rows_per_group, dim, alphabet, duplicates, topk
    ):
        rng = np.random.default_rng(seed)
        q, r, classes = _random_setup(
            rng, n, groups, rows_per_group, dim, alphabet, duplicates
        )
        _assert_pruned_matches(q, r, classes, alphabet, topk)

    @pytest.mark.parametrize("backend", ["numpy", "native"])
    @pytest.mark.parametrize("alphabet", ["binary", "bipolar"])
    def test_both_backends_and_alphabets(self, backend, alphabet):
        if backend == "native" and kernels.backend_name() != "native":
            pytest.skip("native kernel unavailable on this machine")
        rng = np.random.default_rng(7)
        try:
            kernels.set_backend(backend)
            for trial in range(40):
                q, r, classes = _random_setup(
                    rng,
                    n=int(rng.integers(1, 7)),
                    groups=int(rng.integers(1, 10)),
                    rows_per_group=int(rng.integers(1, 5)),
                    dim=int(rng.integers(1, 300)),
                    alphabet=alphabet,
                    duplicates=bool(trial % 2),
                )
                _assert_pruned_matches(q, r, classes, alphabet, None)
                _assert_pruned_matches(q, r, classes, alphabet, 1)
        finally:
            kernels.set_backend(None)

    def test_odd_and_tail_dimensions(self):
        # Dimensions straddling the 64-bit word boundary: the packed tail
        # bits must never leak into bounds or re-rank scores.
        rng = np.random.default_rng(11)
        for dim in (1, 63, 64, 65, 127, 128, 129, 191):
            for alphabet in ("binary", "bipolar"):
                q, r, classes = _random_setup(
                    rng, 5, 6, 3, dim, alphabet, duplicates=True
                )
                _assert_pruned_matches(q, r, classes, alphabet, 2)

    def test_single_class_am(self):
        # Degenerate layout: one group covering everything.  The shortlist
        # is the whole AM, i.e. an exact full scan.
        rng = np.random.default_rng(3)
        q, r, _ = _random_setup(rng, 4, 1, 9, 150, "binary", duplicates=False)
        classes = np.zeros(9, dtype=np.int64)
        index = _assert_pruned_matches(q, r, classes, "binary", None)
        assert index.num_groups == 1
        assert index.effective_topk() == 1

    def test_tiny_margins(self):
        # Near-identical rows: every group's bound is within a bit or two
        # of every other's, maximizing escape-hatch traffic.
        rng = np.random.default_rng(5)
        base = rng.integers(0, 2, 256).astype(np.int8)
        r = np.tile(base, (24, 1))
        flips = rng.integers(0, 256, size=24)
        r[np.arange(24), flips] ^= 1
        q = rng.integers(0, 2, (10, 256)).astype(np.int8)
        classes = np.repeat(np.arange(8), 3)
        _assert_pruned_matches(q, r, classes, "binary", 1)


class TestEscapeHatch:
    def test_fallback_path_taken_and_exact(self):
        # fallback_fraction=0 is invalid; a tiny fraction forces every
        # ambiguous query straight to the full scan, which must still be
        # exact and must be counted.
        rng = np.random.default_rng(13)
        q, r, classes = _random_setup(rng, 12, 10, 4, 64, "bipolar", True)
        index = PrunedAM(
            PackedAM(pack_bipolar(r), classes),
            prune_topk=1,
            fallback_fraction=1e-9,
        )
        got = index.predict_columns(pack_bipolar(q))
        np.testing.assert_array_equal(got, _full_scan_rows(q, r, "bipolar"))
        stats = index.stats()
        assert stats["queries"] == 12
        assert stats["fallbacks"] > 0
        assert stats["widened"] == 0  # everything escalated to a full scan

    def test_widening_path_taken_and_exact(self):
        # fallback_fraction=1 never allows a full scan, so ambiguous
        # queries must resolve through the widened second pass.
        rng = np.random.default_rng(17)
        base = rng.choice(np.array([-1, 1], dtype=np.int8), 128)
        r = np.tile(base, (30, 1))
        flips = rng.integers(0, 128, size=30)
        r[np.arange(30), flips] *= -1
        q = rng.choice(np.array([-1, 1], dtype=np.int8), (8, 128))
        classes = np.repeat(np.arange(10), 3)
        index = PrunedAM(
            PackedAM(pack_bipolar(r), classes),
            prune_topk=1,
            fallback_fraction=1.0,
        )
        got = index.predict_columns(pack_bipolar(q))
        np.testing.assert_array_equal(got, _full_scan_rows(q, r, "bipolar"))
        stats = index.stats()
        assert stats["fallbacks"] == 0
        assert stats["widened"] > 0

    def test_counters_accumulate_and_reset(self):
        rng = np.random.default_rng(19)
        q, r, classes = _random_setup(rng, 6, 8, 2, 96, "binary", False)
        index = PrunedAM(PackedAM(pack_binary(r), classes))
        index.predict_columns(pack_binary(q))
        index.predict_columns(pack_binary(q))
        stats = index.stats()
        assert stats["queries"] == 12
        assert stats["rows_full_scan"] == 12 * 16
        assert stats["prune_topk"] == index.effective_topk()
        index.reset_stats()
        assert index.stats()["queries"] == 0


class TestConfiguration:
    def test_default_topk_heuristic(self):
        assert default_prune_topk(1) == 1
        assert default_prune_topk(16) == 4
        assert default_prune_topk(17) == 5
        with pytest.raises(ValueError):
            default_prune_topk(0)

    def test_invalid_construction(self):
        rng = np.random.default_rng(0)
        r = rng.integers(0, 2, (4, 32)).astype(np.int8)
        am = PackedAM(pack_binary(r), np.arange(4))
        with pytest.raises(ValueError):
            PrunedAM(am, fallback_fraction=0.0)
        with pytest.raises(ValueError):
            PrunedAM(am, prune_topk=0).effective_topk()

    def test_live_topk_update(self):
        rng = np.random.default_rng(23)
        q, r, classes = _random_setup(rng, 4, 9, 3, 64, "binary", False)
        index = PrunedAM(PackedAM(pack_binary(r), classes))
        assert index.effective_topk() == 3  # ceil(sqrt(9))
        index.prune_topk = 99  # clamped to the group count
        assert index.effective_topk() == 9
        index.prune_topk = 2
        got = index.predict_columns(pack_binary(q))
        np.testing.assert_array_equal(got, _full_scan_rows(q, r, "binary"))

    def test_pruned_top1_matches_top1(self):
        rng = np.random.default_rng(29)
        q = rng.integers(0, 2, (7, 90)).astype(np.int8)
        r = rng.integers(0, 2, (33, 90)).astype(np.int8)
        expected = top1(np.atleast_2d(dot_similarity(q, r)))
        np.testing.assert_array_equal(pruned_top1(q, r), expected)
        groups = rng.integers(0, 6, 33)
        np.testing.assert_array_equal(
            pruned_top1(q, r, groups=groups, prune_topk=2), expected
        )
        with pytest.raises(ValueError):
            pruned_top1(q, r, groups=np.zeros(5))


# --------------------------------------------------------------------------
# Model-level differential tests: engine="pruned" == engine="packed"
# --------------------------------------------------------------------------
def _train_data(rng, n=220, f=18, k=6):
    return rng.random((n, f)), rng.integers(0, k, n).astype(np.int64)


class TestModelEngines:
    @pytest.mark.parametrize(
        "factory",
        [BasicHDC, QuantHD, LeHDC, SearcHD],
        ids=lambda cls: cls.__name__,
    )
    def test_baseline_pruned_matches_packed(self, factory):
        rng = np.random.default_rng(31)
        x, y = _train_data(rng)
        model = factory(18, 6)
        model.fit(x, y)
        queries = rng.random((50, 18))
        packed = model.predict(queries, engine="packed")
        pruned = model.predict(queries, engine="pruned")
        np.testing.assert_array_equal(pruned, packed)
        model.configure_pruning(1)
        np.testing.assert_array_equal(model.predict(queries, engine="pruned"), packed)
        stats = model.prune_stats()
        assert stats is not None and stats["queries"] == 100

    def test_memhd_pruned_matches_packed(self):
        rng = np.random.default_rng(37)
        x, y = _train_data(rng)
        model = MEMHDModel(18, 6, MEMHDConfig(dimension=256, columns=30))
        model.fit(x, y)
        queries = rng.random((60, 18))
        packed = model.predict(queries, engine="packed")
        np.testing.assert_array_equal(model.predict(queries, engine="pruned"), packed)
        # class_scores on the pruned engine delegates to the exact scan.
        np.testing.assert_array_equal(
            model.class_scores(queries, engine="pruned"),
            model.class_scores(queries, engine="packed"),
        )

    def test_multicentroid_am_invalidation(self):
        # refresh_binary must rebuild the pruned index, not serve stale
        # sketches over a moved memory.
        rng = np.random.default_rng(41)
        fp = rng.normal(size=(20, 128))
        am = MultiCentroidAM(fp, np.repeat(np.arange(5), 4))
        q = rng.integers(0, 2, (9, 128)).astype(np.int8)
        first = am.predict_columns(q, pruned=True)
        np.testing.assert_array_equal(first, am.predict_columns(q, packed=True))
        am.fp_memory += rng.normal(size=fp.shape)
        am.refresh_binary()
        np.testing.assert_array_equal(
            am.predict_columns(q, pruned=True), am.predict_columns(q, packed=True)
        )

    def test_onlinehd_rejects_pruned(self):
        rng = np.random.default_rng(43)
        x, y = _train_data(rng)
        model = OnlineHD(18, 6)
        model.fit(x, y)
        with pytest.raises(ValueError, match="pruned"):
            model.predict(rng.random((3, 18)), engine="pruned")
        with pytest.raises(ValueError):
            model.prepare_engine("pruned")


class TestPipelineIntegration:
    def test_pipeline_pruned_labels_identical(self):
        rng = np.random.default_rng(47)
        x, y = _train_data(rng)
        model = MEMHDModel(18, 6, MEMHDConfig(dimension=256, columns=30))
        model.fit(x, y)
        queries = rng.random((120, 18))
        packed = InferencePipeline(model, engine="packed", chunk_size=16)
        pruned = InferencePipeline(model, engine="pruned", chunk_size=16, prune_topk=2)
        np.testing.assert_array_equal(pruned.predict(queries), packed.predict(queries))
        stats = pruned.prune_stats()
        assert stats is not None
        assert stats["queries"] >= 120
        assert stats["prune_topk"] == 2

    def test_pipeline_validates_prune_topk(self):
        rng = np.random.default_rng(53)
        x, y = _train_data(rng)
        model = MEMHDModel(18, 6, MEMHDConfig(dimension=256, columns=30))
        model.fit(x, y)
        with pytest.raises(ValueError):
            InferencePipeline(model, engine="pruned", prune_topk=0)

    def test_pipeline_rejects_engineless_model(self):
        class Plain:
            def predict(self, features):
                return np.zeros(len(features), dtype=np.int64)

        with pytest.raises(ValueError):
            InferencePipeline(Plain(), engine="pruned")
