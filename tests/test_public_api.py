"""Public API surface tests.

These tests pin down the package's public interface: every name exported via
``__all__`` must resolve, every public module / class / function must carry a
docstring, and the top-level convenience imports advertised in the README
must exist.  They protect downstream users from silent API breakage.
"""

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.hdc",
    "repro.hdc.hypervector",
    "repro.hdc.similarity",
    "repro.hdc.encoders",
    "repro.hdc.clustering",
    "repro.hdc.item_memory",
    "repro.hdc.memory_model",
    "repro.hdc.packed",
    "repro.data",
    "repro.data.datasets",
    "repro.data.synthetic",
    "repro.data.preprocessing",
    "repro.baselines",
    "repro.baselines.base",
    "repro.baselines.basic_hdc",
    "repro.baselines.quanthd",
    "repro.baselines.searchd",
    "repro.baselines.lehdc",
    "repro.baselines.onlinehd",
    "repro.core",
    "repro.core.config",
    "repro.core.associative_memory",
    "repro.core.initialization",
    "repro.core.quantization",
    "repro.core.training",
    "repro.core.model",
    "repro.core.online",
    "repro.core.compression",
    "repro.imc",
    "repro.imc.array",
    "repro.imc.mapping",
    "repro.imc.cost_model",
    "repro.imc.simulator",
    "repro.imc.noise",
    "repro.imc.adc",
    "repro.imc.scheduler",
    "repro.imc.analysis",
    "repro.runtime",
    "repro.runtime.pipeline",
    "repro.eval",
    "repro.eval.metrics",
    "repro.eval.experiments",
    "repro.eval.reporting",
    "repro.eval.statistics",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} lacks a docstring"


@pytest.mark.parametrize(
    "module_name",
    [
        "repro",
        "repro.hdc",
        "repro.data",
        "repro.baselines",
        "repro.core",
        "repro.imc",
        "repro.runtime",
        "repro.eval",
    ],
)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__") and module.__all__
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing name {name!r}"


def test_top_level_convenience_imports():
    assert repro.MEMHDModel is not None
    assert repro.MEMHDConfig is not None
    assert repro.load_dataset is not None
    assert repro.InMemoryInference is not None
    assert isinstance(repro.__version__, str)


def _public_members(module):
    for name in getattr(module, "__all__", []):
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            yield name, member


@pytest.mark.parametrize(
    "module_name",
    ["repro.hdc", "repro.data", "repro.baselines", "repro.core", "repro.imc", "repro.eval"],
)
def test_public_classes_and_functions_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    for name, member in _public_members(module):
        assert member.__doc__ and member.__doc__.strip(), (
            f"{module_name}.{name} lacks a docstring"
        )


def test_classifiers_share_the_hdc_interface():
    from repro.baselines import BasicHDC, HDCClassifier, LeHDC, OnlineHD, QuantHD, SearcHD
    from repro.core import MEMHDModel

    for model_class in (BasicHDC, QuantHD, SearcHD, LeHDC, OnlineHD, MEMHDModel):
        assert issubclass(model_class, HDCClassifier)
        for method in ("fit", "predict", "score", "memory_report"):
            assert callable(getattr(model_class, method))
