"""Tests for the batched inference pipeline (repro.runtime)."""

import numpy as np
import pytest

from repro.baselines import BasicHDC, BasicHDCConfig, QuantHD, QuantHDConfig
from repro.runtime import InferencePipeline, PipelineStats
from repro.runtime.pipeline import throughput_comparison


class TestPipelineBasics:
    def test_invalid_configuration_rejected(self, trained_memhd):
        model, _ = trained_memhd
        with pytest.raises(ValueError):
            InferencePipeline(model, engine="quantum")
        with pytest.raises(ValueError):
            InferencePipeline(model, chunk_size=0)
        with pytest.raises(ValueError):
            InferencePipeline(model, workers=0)
        with pytest.raises(TypeError):
            InferencePipeline(object())

    def test_labels_match_direct_predict(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        direct = model.predict(tiny_dataset.test_features)
        for engine in ("float", "packed"):
            for chunk_size in (7, 32, 10_000):
                pipeline = InferencePipeline(
                    model, engine=engine, chunk_size=chunk_size
                )
                assert np.array_equal(
                    pipeline.predict(tiny_dataset.test_features), direct
                ), f"engine={engine} chunk_size={chunk_size}"

    def test_sharded_run_matches_serial(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        serial = InferencePipeline(model, engine="packed", chunk_size=9)
        sharded = InferencePipeline(model, engine="packed", chunk_size=9, workers=4)
        assert np.array_equal(
            serial.predict(tiny_dataset.test_features),
            sharded.predict(tiny_dataset.test_features),
        )

    def test_single_vector_batch(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        pipeline = InferencePipeline(model, engine="packed")
        labels = pipeline.predict(tiny_dataset.test_features[0])
        assert labels.shape == (1,)
        assert labels[0] == model.predict(tiny_dataset.test_features[:1])[0]

    def test_stats_account_for_all_chunks(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        total = tiny_dataset.test_features.shape[0]
        chunk_size = 13
        result = InferencePipeline(model, chunk_size=chunk_size).run(
            tiny_dataset.test_features
        )
        stats = result.stats
        assert isinstance(stats, PipelineStats)
        assert stats.total_queries == total
        assert stats.num_chunks == -(-total // chunk_size)
        assert len(stats.chunk_seconds) == stats.num_chunks
        assert stats.elapsed_seconds > 0
        assert stats.queries_per_second > 0
        assert stats.as_dict()["engine"] == "float"

    def test_queries_per_second_finite_on_zero_elapsed(self):
        """Sub-resolution timings must clamp, not report ``inf`` throughput."""
        import json
        import math

        from repro.runtime.pipeline import MIN_MEASURABLE_SECONDS

        stats = PipelineStats(
            engine="float",
            total_queries=64,
            num_chunks=1,
            chunk_size=64,
            workers=1,
            elapsed_seconds=0.0,
        )
        rate = stats.queries_per_second
        assert math.isfinite(rate)
        assert rate == pytest.approx(64 / MIN_MEASURABLE_SECONDS)
        # Negative clock skew readings clamp the same way.
        skewed = PipelineStats(
            engine="float",
            total_queries=64,
            num_chunks=1,
            chunk_size=64,
            workers=1,
            elapsed_seconds=-1e-6,
        )
        assert math.isfinite(skewed.queries_per_second)
        # The rate must survive a JSON round-trip (inf would not).
        payload = json.dumps(stats.as_dict())
        assert json.loads(payload)["queries_per_s"] == pytest.approx(rate)
        # Ordinary measurable timings are untouched by the clamp.
        timed = PipelineStats(
            engine="float",
            total_queries=100,
            num_chunks=1,
            chunk_size=128,
            workers=1,
            elapsed_seconds=0.5,
        )
        assert timed.queries_per_second == pytest.approx(200.0)

    def test_warmup_is_idempotent(self, trained_memhd):
        model, _ = trained_memhd
        pipeline = InferencePipeline(model, engine="packed")
        pipeline.warmup()
        packed_am = model.associative_memory.packed()
        pipeline.warmup()
        assert model.associative_memory.packed() is packed_am


class TestModelIntegration:
    def test_make_pipeline_defaults_to_packed(self, trained_memhd):
        model, _ = trained_memhd
        pipeline = model.make_pipeline()
        assert pipeline.engine == "packed"
        assert pipeline.model is model

    def test_basichdc_packed_pipeline(self, tiny_dataset):
        model = BasicHDC(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            BasicHDCConfig(dimension=96, refine_epochs=1, seed=5),
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        pipeline = InferencePipeline(model, engine="packed", chunk_size=11)
        assert np.array_equal(
            pipeline.predict(tiny_dataset.test_features),
            model.predict(tiny_dataset.test_features),
        )

    def test_quanthd_packed_pipeline(self, tiny_dataset):
        model = QuantHD(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            QuantHDConfig(dimension=96, num_levels=8, epochs=1, seed=6),
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        pipeline = InferencePipeline(model, engine="packed", chunk_size=11)
        assert np.array_equal(
            pipeline.predict(tiny_dataset.test_features),
            model.predict(tiny_dataset.test_features),
        )

    def test_packed_engine_rejected_for_unsupported_model(self):
        class FloatOnly:
            def predict(self, features):
                return np.zeros(len(features), dtype=np.int64)

        assert InferencePipeline(FloatOnly()).engine == "float"
        with pytest.raises(ValueError):
            InferencePipeline(FloatOnly(), engine="packed")

    def test_kwargs_swallowing_model_is_not_packed_capable(self):
        class Swallows:
            def predict(self, features, **kwargs):
                return np.zeros(len(features), dtype=np.int64)

        # A bare **kwargs would silently ignore the engine keyword, so it
        # must not count as packed support.
        with pytest.raises(ValueError):
            InferencePipeline(Swallows(), engine="packed")

    def test_float_only_models_still_serve(self, tiny_dataset):
        class Majority:
            def predict(self, features):
                return np.ones(np.atleast_2d(features).shape[0], dtype=np.int64)

        pipeline = InferencePipeline(Majority(), chunk_size=8)
        labels = pipeline.predict(tiny_dataset.test_features)
        assert labels.shape == (tiny_dataset.test_features.shape[0],)
        assert (labels == 1).all()


class TestThroughputComparison:
    def test_engines_compared_on_identical_labels(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        labels, stats = throughput_comparison(
            model, tiny_dataset.test_features, chunk_size=16, repeats=2
        )
        assert np.array_equal(labels, model.predict(tiny_dataset.test_features))
        assert [s.engine for s in stats] == ["float", "packed", "pruned"]
        for engine_stats in stats:
            assert engine_stats.total_queries == tiny_dataset.test_features.shape[0]

    def test_repeats_must_be_positive(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        with pytest.raises(ValueError):
            throughput_comparison(model, tiny_dataset.test_features, repeats=0)
        with pytest.raises(ValueError):
            throughput_comparison(model, tiny_dataset.test_features, engines=())
