"""Tests for the multi-model ModelPool: routing, stats, hot-swap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.io.registry import ArtifactRegistry
from repro.runtime.pool import (
    IN_PROCESS_SPEC,
    ModelPool,
    ModelStats,
    PoolError,
    UnknownModelError,
)


def _train(dataset, seed: int) -> MEMHDModel:
    model = MEMHDModel(
        dataset.num_features,
        dataset.num_classes,
        MEMHDConfig(dimension=48, columns=16, epochs=2, seed=seed),
        rng=seed,
    )
    model.fit(dataset.train_features, dataset.train_labels)
    return model


@pytest.fixture(scope="module")
def registry(tmp_path_factory, tiny_dataset):
    """A registry holding two versions of 'demo' plus an 'alt' model."""
    store = ArtifactRegistry(tmp_path_factory.mktemp("pool-store"))
    store.save(_train(tiny_dataset, seed=1), "demo", tag="v1")
    store.save(_train(tiny_dataset, seed=2), "demo", tag="v2")
    store.save(_train(tiny_dataset, seed=3), "alt", tag="v1")
    return store


class TestRouting:
    def test_default_is_first_added(self, trained_memhd):
        model, _ = trained_memhd
        with ModelPool() as pool:
            pool.add_model("first", model)
            pool.add_model("second", model)
            assert pool.default_key == "first"
            assert pool.get().key == "first"
            assert pool.get("second").key == "second"
            assert pool.keys() == ["first", "second"]

    def test_unknown_key_raises(self, trained_memhd):
        model, _ = trained_memhd
        with ModelPool() as pool:
            pool.add_model("only", model)
            with pytest.raises(UnknownModelError, match="'nope'"):
                pool.get("nope")

    def test_empty_pool_has_no_default(self):
        with ModelPool() as pool:
            with pytest.raises(UnknownModelError):
                pool.get()

    def test_add_spec_routes_by_artifact_name(self, registry):
        with ModelPool(registry=registry) as pool:
            entry = pool.add_spec("demo:v1")
            assert entry.key == "demo"
            assert entry.spec == "demo:v1"
            assert entry.resolved_spec == "demo:v1"

    def test_latest_spec_resolves_to_concrete_tag(self, registry):
        with ModelPool(registry=registry) as pool:
            entry = pool.add_spec("demo")
            assert entry.spec == "demo"
            assert entry.resolved_spec == "demo:v2"

    def test_add_spec_without_registry_raises(self, trained_memhd):
        with ModelPool() as pool:
            with pytest.raises(PoolError, match="registry"):
                pool.add_spec("demo:v1")


class TestServing:
    def test_entry_predictions_match_direct_model(self, registry, tiny_dataset):
        with ModelPool(registry=registry, engine="packed") as pool:
            entry = pool.add_spec("demo:v1")
            batch = tiny_dataset.test_features[:10]
            served = entry.predict(batch)
            expected = registry.load("demo:v1").predict(batch, engine="packed")
            assert np.array_equal(served, expected)

    def test_batching_disabled_serves_directly(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        with ModelPool(batching=False) as pool:
            entry = pool.add_model("direct", model)
            assert entry.scheduler is None
            batch = tiny_dataset.test_features[:5]
            assert np.array_equal(entry.predict(batch), model.predict(batch))
            assert pool.total_queue_size() == 0

    def test_stats_dict_nests_per_model(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        with ModelPool() as pool:
            entry = pool.add_model("m", model)
            entry.predict(tiny_dataset.test_features[:4])
            entry.stats.record_predict(4, 0.1)
            stats = pool.stats_dict()
            assert set(stats) == {"m"}
            assert stats["m"]["queries"] == 4
            assert stats["m"]["scheduler"]["queries"] == 4
            assert stats["m"]["version"] == 1


class TestHotSwap:
    def test_reload_pinned_tag_bumps_version_only(self, registry):
        with ModelPool(registry=registry) as pool:
            first = pool.add_spec("demo:v1")
            second = pool.reload("demo")
            assert second.resolved_spec == "demo:v1"
            assert second.version == first.version + 1
            assert pool.get("demo") is second

    def test_reload_latest_picks_up_new_tags(self, registry, tiny_dataset):
        with ModelPool(registry=registry) as pool:
            entry = pool.add_spec("demo")
            assert entry.resolved_spec == "demo:v2"
            registry.save(_train(tiny_dataset, seed=9), "demo", tag="v3")
            try:
                swapped = pool.reload("demo")
                assert swapped.resolved_spec == "demo:v3"
                assert swapped.version == 2
            finally:
                registry.remove("demo:v3")

    def test_reload_explicit_spec_and_old_scheduler_drained(self, registry):
        with ModelPool(registry=registry) as pool:
            old = pool.add_spec("demo:v1")
            new = pool.reload("demo", spec="demo:v2")
            assert new.resolved_spec == "demo:v2"
            assert old.scheduler.closed
            assert not new.scheduler.closed

    def test_reload_defaults_to_default_model(self, registry):
        with ModelPool(registry=registry) as pool:
            pool.add_spec("demo:v1")
            pool.add_spec("alt:v1")
            assert pool.reload().key == "demo"

    def test_reload_in_process_model_needs_spec(self, registry, trained_memhd):
        model, _ = trained_memhd
        with ModelPool(registry=registry) as pool:
            pool.add_model("live", model)
            with pytest.raises(PoolError, match="in-process"):
                pool.reload("live")
            swapped = pool.reload("live", spec="demo:v1")
            assert swapped.resolved_spec == "demo:v1"
            assert swapped.spec == "demo:v1"
            assert swapped.key == "live"

    def test_in_process_spec_marker(self, trained_memhd):
        model, _ = trained_memhd
        with ModelPool() as pool:
            assert pool.add_model("m", model).spec == IN_PROCESS_SPEC


class TestLifecycle:
    def test_close_is_idempotent_and_blocks_adds(self, trained_memhd):
        model, _ = trained_memhd
        pool = ModelPool()
        pool.add_model("m", model)
        pool.close()
        pool.close()
        with pytest.raises(PoolError, match="closed"):
            pool.add_model("late", model)

    def test_closed_entry_rejects_work(self, trained_memhd, tiny_dataset):
        from repro.runtime.scheduler import SchedulerClosedError

        model, _ = trained_memhd
        pool = ModelPool()
        entry = pool.add_model("m", model)
        pool.close()
        with pytest.raises(SchedulerClosedError):
            entry.predict(tiny_dataset.test_features[:2])


class TestModelStats:
    def test_errors_do_not_skew_queries_per_second(self):
        """The serving-v2 regression fix: error responses contribute
        neither queries nor predict time, so throughput stays truthful."""
        stats = ModelStats()
        stats.record_predict(100, 0.5)
        healthy = stats.as_dict()["queries_per_second"]
        for _ in range(50):
            stats.record_error(429)
        snapshot = stats.as_dict()
        assert snapshot["queries_per_second"] == pytest.approx(healthy)
        assert snapshot["queries"] == 100
        assert snapshot["errors"] == 50
        assert snapshot["errors_by_status"] == {"429": 50}
        assert snapshot["requests"] == 51
