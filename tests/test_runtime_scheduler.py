"""Unit and concurrency tests for the micro-batching BatchScheduler.

The scheduler is the correctness-critical piece of serving v2: it must
coalesce freely without ever changing a prediction, losing a request,
duplicating one, or leaving a future unresolved.  These tests pin all
four properties, including under a 16+ thread hammer and across clean and
abrupt shutdowns.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import wait

import numpy as np
import pytest

from repro.runtime.pipeline import InferencePipeline
from repro.runtime.scheduler import (
    BatchScheduler,
    DeadlineExceededError,
    QueueFullError,
    SchedulerClosedError,
)


class EchoPipeline:
    """Stub pipeline whose 'label' for a row is the row's first feature.

    Makes request-to-result routing trivially checkable: if request i
    sends rows filled with the value i, its future must resolve to all-i
    labels no matter how requests were glued into micro-batches.
    """

    def __init__(self):
        self.batch_rows = []
        self._lock = threading.Lock()

    def predict(self, features):
        with self._lock:
            self.batch_rows.append(int(np.asarray(features).shape[0]))
        return np.asarray(features)[:, 0].astype(np.int64)


class GatedPipeline(EchoPipeline):
    """EchoPipeline that blocks each dispatch until released."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()
        self.entered = threading.Event()

    def predict(self, features):
        self.entered.set()
        assert self.release.wait(timeout=10.0), "gate never released"
        return super().predict(features)


class FailingPipeline:
    def predict(self, features):
        raise RuntimeError("engine exploded")


def _request(value: int, rows: int, width: int = 4) -> np.ndarray:
    return np.full((rows, width), float(value))


class TestValidation:
    def test_rejects_bad_knobs(self):
        pipeline = EchoPipeline()
        with pytest.raises(ValueError):
            BatchScheduler(pipeline, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(pipeline, max_wait_ms=-1)
        with pytest.raises(ValueError):
            BatchScheduler(pipeline, queue_depth=0)

    def test_rejects_bad_submissions(self):
        with BatchScheduler(EchoPipeline()) as scheduler:
            with pytest.raises(ValueError):
                scheduler.submit(np.zeros((0, 4)))
            with pytest.raises(ValueError):
                scheduler.submit(np.zeros(4)[None, :], deadline_ms=0)
            with pytest.raises(ValueError):
                scheduler.submit(np.zeros((2, 2, 2)))


class TestCoalescing:
    def test_single_request_round_trip(self):
        with BatchScheduler(EchoPipeline(), max_wait_ms=0.0) as scheduler:
            labels = scheduler.predict(_request(7, rows=3))
            assert labels.tolist() == [7, 7, 7]

    def test_results_routed_to_the_right_request(self):
        """Coalesced or not, request i gets exactly its own rows back."""
        pipeline = EchoPipeline()
        with BatchScheduler(pipeline, max_batch_size=16, max_wait_ms=20.0) as sched:
            futures = {
                value: sched.submit(_request(value, rows=1 + value % 3))
                for value in range(12)
            }
            for value, future in futures.items():
                labels = future.result(timeout=10.0)
                assert labels.tolist() == [value] * (1 + value % 3)
        # With a 20 ms window and instant submissions, at least one
        # dispatch must have glued several requests together.
        assert max(pipeline.batch_rows) > 3

    def test_max_batch_size_is_never_exceeded(self):
        pipeline = EchoPipeline()
        with BatchScheduler(pipeline, max_batch_size=8, max_wait_ms=50.0) as sched:
            futures = [sched.submit(_request(i, rows=3)) for i in range(20)]
            wait(futures, timeout=10.0)
        assert pipeline.batch_rows, "nothing was dispatched"
        assert max(pipeline.batch_rows) <= 8

    def test_oversized_request_is_dispatched_alone(self):
        pipeline = EchoPipeline()
        with BatchScheduler(pipeline, max_batch_size=4, max_wait_ms=0.0) as sched:
            labels = sched.predict(_request(5, rows=10))
            assert labels.tolist() == [5] * 10
        assert 10 in pipeline.batch_rows

    def test_hammer_no_request_lost_or_duplicated(self):
        """>=16 threads, mixed batch sizes: every row comes back exactly
        once, to its own requester."""
        pipeline = EchoPipeline()
        results = {}
        errors = []
        with BatchScheduler(pipeline, max_batch_size=32, max_wait_ms=2.0) as sched:

            def client(worker: int) -> None:
                try:
                    for step in range(10):
                        value = worker * 100 + step
                        rows = 1 + (value % 4)
                        labels = sched.predict(_request(value, rows), timeout=30.0)
                        results[value] = labels.tolist()
                except Exception as error:  # pragma: no cover - fail loudly
                    errors.append(error)

            threads = [
                threading.Thread(target=client, args=(worker,))
                for worker in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert not errors
        assert len(results) == 160
        for value, labels in results.items():
            assert labels == [value] * (1 + (value % 4))
        # Conservation: dispatched rows == submitted rows (no dup/loss).
        assert sum(pipeline.batch_rows) == sum(
            1 + (w * 100 + s) % 4 for w in range(16) for s in range(10)
        )


class TestBitExactness:
    def test_batched_predictions_match_direct_model(self, trained_memhd, tiny_dataset):
        """Coalesced serving through a real pipeline is bit-identical to
        direct model.predict, per request, from 16 concurrent threads."""
        model, _ = trained_memhd
        pipeline = InferencePipeline(model, engine="packed", chunk_size=16)
        pipeline.warmup()
        features = tiny_dataset.test_features
        mismatches = []
        with BatchScheduler(pipeline, max_batch_size=24, max_wait_ms=2.0) as sched:

            def client(worker: int) -> None:
                rng = np.random.default_rng(worker)
                for _ in range(6):
                    size = int(rng.integers(1, 9))
                    start = int(rng.integers(0, len(features) - size))
                    batch = features[start : start + size]
                    served = sched.predict(batch, timeout=30.0)
                    expected = model.predict(batch, engine="packed")
                    if not np.array_equal(served, expected):
                        mismatches.append((worker, start, size))

            threads = [threading.Thread(target=client, args=(w,)) for w in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert not mismatches


class TestAdmissionControl:
    def test_queue_full_raises_with_retry_hint(self):
        pipeline = GatedPipeline()
        scheduler = BatchScheduler(
            pipeline, max_batch_size=1, max_wait_ms=0.0, queue_depth=2
        )
        try:
            first = scheduler.submit(_request(1, 1))
            assert pipeline.entered.wait(timeout=5.0)
            queued = [scheduler.submit(_request(value, 1)) for value in (2, 3)]
            with pytest.raises(QueueFullError) as excinfo:
                scheduler.submit(_request(4, 1))
            assert excinfo.value.retry_after_s > 0
            assert scheduler.stats.rejected_full == 1
        finally:
            pipeline.release.set()
            scheduler.close()
        assert first.result(timeout=5.0).tolist() == [1]
        assert [f.result(timeout=5.0).tolist() for f in queued] == [[2], [3]]

    def test_expired_deadline_fails_instead_of_serving(self):
        pipeline = GatedPipeline()
        scheduler = BatchScheduler(pipeline, max_batch_size=1, max_wait_ms=0.0)
        try:
            blocker = scheduler.submit(_request(1, 1))
            assert pipeline.entered.wait(timeout=5.0)
            doomed = scheduler.submit(_request(2, 1), deadline_ms=20)
            time.sleep(0.06)
        finally:
            pipeline.release.set()
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=5.0)
        assert blocker.result(timeout=5.0).tolist() == [1]
        assert scheduler.stats.expired_deadlines == 1
        scheduler.close()
        # The doomed request's rows were never dispatched.
        assert sum(pipeline.batch_rows) == 1

    def test_mismatched_widths_fail_batch_not_dispatcher(self):
        """A request whose width disagrees with its batchmates must fail
        its own batch cleanly; the dispatcher survives (regression: the
        concatenate used to run outside the try and killed the thread)."""
        pipeline = GatedPipeline()
        scheduler = BatchScheduler(pipeline, max_batch_size=8, max_wait_ms=50.0)
        try:
            blocker = scheduler.submit(_request(0, 1))
            assert pipeline.entered.wait(timeout=5.0)
            narrow = scheduler.submit(np.zeros((1, 4)))
            wide = scheduler.submit(np.zeros((1, 7)))
            pipeline.release.set()
            assert blocker.result(timeout=5.0).tolist() == [0]
            for future in (narrow, wide):
                with pytest.raises(ValueError):
                    future.result(timeout=5.0)
            # The dispatcher is still alive and serving.
            assert scheduler.predict(_request(9, 2), timeout=5.0).tolist() == [9, 9]
        finally:
            scheduler.close()

    def test_pipeline_failure_fans_out_without_killing_dispatcher(self):
        with BatchScheduler(FailingPipeline(), max_wait_ms=0.0) as scheduler:
            future = scheduler.submit(_request(1, 2))
            with pytest.raises(RuntimeError, match="engine exploded"):
                future.result(timeout=5.0)
            # The dispatcher survives to fail the next request too.
            with pytest.raises(RuntimeError, match="engine exploded"):
                scheduler.predict(_request(2, 1), timeout=5.0)


class TestShutdown:
    def test_close_drains_queued_requests(self):
        """A draining close serves everything queued -- no hung futures."""
        pipeline = GatedPipeline()
        scheduler = BatchScheduler(pipeline, max_batch_size=1, max_wait_ms=0.0)
        first = scheduler.submit(_request(0, 1))
        assert pipeline.entered.wait(timeout=5.0)
        queued = [scheduler.submit(_request(value, 1)) for value in (1, 2, 3)]
        closer = threading.Thread(target=scheduler.close)
        closer.start()
        pipeline.release.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()
        assert first.result(timeout=1.0).tolist() == [0]
        for value, future in enumerate(queued, start=1):
            assert future.result(timeout=1.0).tolist() == [value]

    def test_abrupt_close_fails_pending_futures(self):
        pipeline = GatedPipeline()
        scheduler = BatchScheduler(pipeline, max_batch_size=1, max_wait_ms=0.0)
        scheduler.submit(_request(0, 1))
        assert pipeline.entered.wait(timeout=5.0)
        pending = scheduler.submit(_request(1, 1))
        pipeline.release.set()
        scheduler.close(drain=False)
        # Either served before the close popped it, or failed cleanly --
        # never left unresolved.
        assert pending.done()
        try:
            assert pending.result().tolist() == [1]
        except SchedulerClosedError:
            pass

    def test_submit_after_close_raises(self):
        scheduler = BatchScheduler(EchoPipeline())
        scheduler.close()
        with pytest.raises(SchedulerClosedError):
            scheduler.submit(_request(1, 1))

    def test_close_is_idempotent(self):
        scheduler = BatchScheduler(EchoPipeline())
        scheduler.close()
        scheduler.close()
        assert scheduler.closed


class TestStats:
    def test_histogram_and_counters_account_known_traffic(self):
        pipeline = EchoPipeline()
        with BatchScheduler(pipeline, max_batch_size=64, max_wait_ms=0.0) as sched:
            for value in range(5):
                sched.predict(_request(value, rows=2))
        stats = sched.stats.as_dict()
        assert stats["queries"] == 10
        assert stats["coalesced_requests"] == 5
        assert stats["batches"] == sum(stats["batch_size_histogram"].values())
        total_rows = sum(
            int(rows) * count
            for rows, count in stats["batch_size_histogram"].items()
        )
        assert total_rows == 10
        assert stats["rejected_full"] == 0
        assert stats["expired_deadlines"] == 0
        assert stats["mean_batch_rows"] == pytest.approx(10 / stats["batches"])
