"""End-to-end smoke tests for the serve daemon (repro.runtime.server)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.io.checkpoint import save_checkpoint, read_manifest
from repro.runtime.server import ModelServer, ServerStats


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post(url, payload, raw: bytes = None):
    body = raw if raw is not None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


@pytest.fixture(scope="module")
def server(trained_memhd, tmp_path_factory):
    """A live daemon on an ephemeral port, serving a checkpointed model."""
    model, _ = trained_memhd
    path = tmp_path_factory.mktemp("serve") / "model.npz"
    save_checkpoint(model, path, metrics={"note": "server-smoke"})
    daemon = ModelServer(
        model,
        engine="packed",
        chunk_size=16,
        manifest=read_manifest(path),
        port=0,
    )
    with daemon:
        yield daemon


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = _get(server.url + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["model"] == "MEMHD"
        assert payload["engine"] == "packed"
        assert payload["uptime_s"] >= 0.0

    def test_predict_matches_in_process_model(self, server, tiny_dataset):
        features = tiny_dataset.test_features[:40]
        status, payload = _post(
            server.url + "/predict", {"features": features.tolist()}
        )
        assert status == 200
        assert payload["count"] == 40
        expected = server.model.predict(features, engine="packed")
        assert payload["labels"] == [int(label) for label in expected]
        assert payload["elapsed_ms"] >= 0.0

    def test_predict_single_vector(self, server, tiny_dataset):
        vector = tiny_dataset.test_features[0]
        status, payload = _post(server.url + "/predict", {"features": vector.tolist()})
        assert status == 200
        assert payload["count"] == 1

    def test_stats_accumulate(self, server, tiny_dataset):
        before = _get(server.url + "/stats")[1]
        _post(
            server.url + "/predict",
            {"features": tiny_dataset.test_features[:8].tolist()},
        )
        after = _get(server.url + "/stats")[1]
        assert after["queries"] >= before["queries"] + 8
        assert after["requests"] > before["requests"]
        assert after["queries_per_second"] >= 0.0

    def test_manifest_endpoint(self, server):
        status, payload = _get(server.url + "/manifest")
        assert status == 200
        assert payload["model_class"] == "MEMHDModel"
        assert payload["metrics"] == {"note": "server-smoke"}


class TestErrorHandling:
    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_get_predict_405(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/predict")
        assert excinfo.value.code == 405

    def test_post_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/other", {"features": [[0.0]]})
        assert excinfo.value.code == 404

    def test_invalid_json_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/predict", None, raw=b"not json at all")
        assert excinfo.value.code == 400

    def test_missing_features_key_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/predict", {"rows": [[0.0]]})
        assert excinfo.value.code == 400

    def test_ragged_features_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/predict", {"features": [[0.0, 1.0], [0.0]]})
        assert excinfo.value.code == 400

    def test_empty_batch_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/predict", {"features": []})
        assert excinfo.value.code == 400

    def test_negative_content_length_400(self, server):
        """A negative length must not hang the handler in read-to-EOF."""
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.putrequest("POST", "/predict")
            connection.putheader("Content-Length", "-1")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
        finally:
            connection.close()

    def test_oversized_content_length_413(self, server):
        import http.client

        from repro.runtime.server import MAX_REQUEST_BYTES

        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.putrequest("POST", "/predict")
            connection.putheader("Content-Length", str(MAX_REQUEST_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
        finally:
            connection.close()

    def test_errors_counted_in_stats(self, server):
        before = _get(server.url + "/stats")[1]["errors"]
        with pytest.raises(urllib.error.HTTPError):
            _get(server.url + "/nope")
        after = _get(server.url + "/stats")[1]["errors"]
        assert after == before + 1


class TestLifecycle:
    def test_float_engine_server(self, trained_memhd, tiny_dataset):
        model, _ = trained_memhd
        with ModelServer(model, engine="float", port=0) as daemon:
            features = tiny_dataset.test_features[:10]
            _, payload = _post(daemon.url + "/predict", {"features": features.tolist()})
            assert payload["labels"] == [
                int(label) for label in model.predict(features, engine="float")
            ]

    def test_shutdown_is_idempotent(self, trained_memhd):
        model, _ = trained_memhd
        daemon = ModelServer(model, port=0).start()
        daemon.shutdown()
        daemon.shutdown()

    def test_start_is_idempotent(self, trained_memhd):
        model, _ = trained_memhd
        daemon = ModelServer(model, port=0)
        try:
            assert daemon.start() is daemon.start()
        finally:
            daemon.shutdown()

    def test_stats_math(self):
        stats = ServerStats()
        stats.record_predict(10, 0.5)
        stats.record_predict(10, 0.5)
        stats.record_error()
        snapshot = stats.as_dict()
        assert snapshot["requests"] == 3
        assert snapshot["queries"] == 20
        assert snapshot["errors"] == 1
        assert snapshot["queries_per_second"] == pytest.approx(20.0)

    def test_predict_payload_rejects_bad_shapes(self, trained_memhd):
        model, _ = trained_memhd
        daemon = ModelServer(model, port=0)
        try:
            with pytest.raises(ValueError):
                daemon.predict_payload([[[1.0]]])
            with pytest.raises(ValueError):
                daemon.predict_payload("nonsense")
            result = daemon.predict_payload(np.zeros((2, model.num_features)).tolist())
            assert result["count"] == 2
        finally:
            daemon.shutdown()
