"""End-to-end tests for serving runtime v2 over real HTTP.

Covers the four hardening satellites of the serving-v2 PR:

* **concurrency stress** -- >=16 client threads with mixed batch sizes;
  every response bit-identical to direct ``model.predict``, no request
  lost or duplicated, clean shutdown drains the queue;
* **hot-swap race** -- a steady request stream while ``POST /reload``
  swaps checkpoints in a loop; every response comes wholly from one model
  version and ``/manifest`` never 500s;
* **error paths** -- unknown model 404, full queue 429 + ``Retry-After``,
  expired deadline 503, malformed ``/reload`` 400;
* **stats schema** -- the ``/stats`` and ``/predict`` payload shapes are
  pinned against ``tests/golden/serving_stats_schema.json`` (regenerate
  after an intentional change with ``REPRO_REGEN_GOLDEN=1``).
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.io.registry import ArtifactRegistry
from repro.runtime.server import ModelServer

GOLDEN_SCHEMA_PATH = Path(__file__).parent / "golden" / "serving_stats_schema.json"


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post_status(url, payload):
    """POST returning (status, payload, headers) without raising on 4xx/5xx."""
    try:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return (
                response.status,
                json.loads(response.read().decode("utf-8")),
                dict(response.headers),
            )
    except urllib.error.HTTPError as error:
        body = json.loads(error.read().decode("utf-8"))
        headers = dict(error.headers)
        error.close()
        return error.code, body, headers


def _train(dataset, seed: int) -> MEMHDModel:
    model = MEMHDModel(
        dataset.num_features,
        dataset.num_classes,
        MEMHDConfig(dimension=48, columns=16, epochs=2, seed=seed),
        rng=seed,
    )
    model.fit(dataset.train_features, dataset.train_labels)
    return model


@pytest.fixture(scope="module")
def serving_stack(tmp_path_factory, tiny_dataset):
    """Registry with two distinguishable 'demo' versions + a live server."""
    store = ArtifactRegistry(tmp_path_factory.mktemp("serve-v2-store"))
    v1 = _train(tiny_dataset, seed=1)
    v2 = _train(tiny_dataset, seed=2)
    probe = tiny_dataset.test_features
    # The swap-race test needs the versions to disagree somewhere,
    # otherwise "wholly one version" would be vacuous.
    assert not np.array_equal(
        v1.predict(probe, engine="packed"), v2.predict(probe, engine="packed")
    )
    store.save(v1, "demo", tag="v1")
    store.save(v2, "demo", tag="v2")
    store.save(_train(tiny_dataset, seed=3), "alt", tag="v1")
    server = ModelServer(
        models=["demo:v1", "alt:v1"],
        registry=store,
        engine="packed",
        max_batch_size=32,
        max_wait_ms=2.0,
        queue_depth=256,
        port=0,
    )
    with server:
        yield {
            "server": server,
            "registry": store,
            "models": {"demo:v1": v1, "demo:v2": v2},
        }
    # Post-shutdown: the pool drained; no scheduler may still hold work.
    assert server.pool.total_queue_size() == 0


class GateModel:
    """Minimal 'model' whose predict blocks until released (429/503 tests)."""

    name = "gate"
    num_features = 4

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def predict(self, features):
        self.entered.set()
        assert self.release.wait(timeout=30.0)
        return np.zeros(np.asarray(features).shape[0], dtype=np.int64)


class TestMultiModelRouting:
    def test_default_and_path_and_body_routing_agree(
        self, serving_stack, tiny_dataset
    ):
        server = serving_stack["server"]
        batch = tiny_dataset.test_features[:6].tolist()
        _, by_default, _ = _post_status(server.url + "/predict", {"features": batch})
        _, by_path, _ = _post_status(
            server.url + "/models/demo/predict", {"features": batch}
        )
        _, by_body, _ = _post_status(
            server.url + "/predict", {"features": batch, "model": "demo"}
        )
        assert by_default["labels"] == by_path["labels"] == by_body["labels"]
        assert by_default["model"] == "demo"
        assert by_default["artifact"] == "demo:v1"

    def test_second_model_served_concurrently(self, serving_stack, tiny_dataset):
        server = serving_stack["server"]
        registry = serving_stack["registry"]
        batch = tiny_dataset.test_features[:8]
        status, payload, _ = _post_status(
            server.url + "/models/alt/predict", {"features": batch.tolist()}
        )
        assert status == 200
        expected = registry.load("alt:v1").predict(batch, engine="packed")
        assert payload["labels"] == [int(label) for label in expected]
        assert payload["model"] == "alt"

    def test_models_listing(self, serving_stack):
        server = serving_stack["server"]
        status, payload = _get(server.url + "/models")
        assert status == 200
        keys = {row["key"] for row in payload["models"]}
        assert keys == {"demo", "alt"}

    def test_named_manifest(self, serving_stack):
        server = serving_stack["server"]
        status, payload = _get(server.url + "/models/alt/manifest")
        assert status == 200
        assert payload["model_class"] == "MEMHDModel"


class TestConcurrencyStress:
    def test_hammer_bit_exact_no_loss(self, serving_stack, tiny_dataset):
        """16 threads x mixed batch sizes: every response 200 and
        bit-identical to the direct model; request count conserved."""
        server = serving_stack["server"]
        model = serving_stack["models"]["demo:v1"]
        features = tiny_dataset.test_features
        failures = []
        completed = []
        before = _get(server.url + "/stats")[1]["models"]["demo"]

        def client(worker: int) -> None:
            rng = np.random.default_rng(1000 + worker)
            for _ in range(8):
                size = int(rng.integers(1, 10))
                start = int(rng.integers(0, len(features) - size))
                batch = features[start : start + size]
                status, payload, _ = _post_status(
                    server.url + "/models/demo/predict",
                    {"features": batch.tolist()},
                )
                expected = [
                    int(label) for label in model.predict(batch, engine="packed")
                ]
                if status != 200 or payload["labels"] != expected:
                    failures.append((worker, status, payload))
                else:
                    completed.append(payload["count"])

        threads = [threading.Thread(target=client, args=(w,)) for w in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not failures
        assert len(completed) == 16 * 8
        after = _get(server.url + "/stats")[1]["models"]["demo"]
        assert after["requests"] - before["requests"] == 16 * 8
        assert after["queries"] - before["queries"] == sum(completed)
        # Micro-batching actually engaged under the hammer.
        histogram = after["scheduler"]["batch_size_histogram"]
        assert any(int(rows) > 9 for rows in histogram)

    def test_shutdown_drains_cleanly(self, tiny_dataset, trained_memhd):
        """Shutdown under load: every admitted request gets an answer."""
        model, _ = trained_memhd
        server = ModelServer(
            model, engine="packed", max_batch_size=16, max_wait_ms=1.0, port=0
        ).start()
        outcomes = []
        stop = threading.Event()

        def client() -> None:
            batch = tiny_dataset.test_features[:3].tolist()
            while not stop.is_set():
                try:
                    status, _, _ = _post_status(
                        server.url + "/predict", {"features": batch}
                    )
                    outcomes.append((status, time.monotonic()))
                except (urllib.error.URLError, OSError, json.JSONDecodeError):
                    # Connection refused/reset after the listener stopped
                    # is fine; a hung request would fail the join below.
                    return

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        shutdown_started = time.monotonic()
        stop.set()
        server.shutdown()
        for thread in threads:
            thread.join(timeout=30.0)
            assert not thread.is_alive(), "a client hung across shutdown"
        assert outcomes
        # Every request gets a definite answer (never a hang, per the
        # joins above): 200 normally; a request racing the shutdown
        # boundary may be shed with 503, but only then.
        assert all(status in (200, 503) for status, _ in outcomes), outcomes
        for status, finished in outcomes:
            if status == 503:
                assert finished >= shutdown_started
        assert any(status == 200 for status, _ in outcomes)
        assert server.pool.total_queue_size() == 0


class TestHotSwapRace:
    def test_responses_wholly_from_one_version(self, serving_stack, tiny_dataset):
        """Requests racing a reload loop: each response must match one
        checkpoint exactly (no torn reads) and agree with the version the
        server claims served it; /manifest never errors."""
        server = serving_stack["server"]
        models = serving_stack["models"]
        probe = tiny_dataset.test_features[:12]
        expected = {
            spec: [int(v) for v in model.predict(probe, engine="packed")]
            for spec, model in models.items()
        }
        stop = threading.Event()
        anomalies = []
        manifest_failures = []
        served_specs = set()

        def requester() -> None:
            while not stop.is_set():
                status, payload, _ = _post_status(
                    server.url + "/models/demo/predict",
                    {"features": probe.tolist()},
                )
                if status != 200:
                    anomalies.append(("status", status, payload))
                    continue
                artifact = payload["artifact"]
                if payload["labels"] != expected.get(artifact):
                    anomalies.append(("torn", artifact, payload["labels"]))
                served_specs.add(artifact)

        def manifest_poller() -> None:
            while not stop.is_set():
                try:
                    status, payload = _get(server.url + "/models/demo/manifest")
                    if status != 200 or "model_class" not in payload:
                        manifest_failures.append((status, payload))
                except urllib.error.HTTPError as error:
                    manifest_failures.append((error.code, None))
                    error.close()

        workers = [threading.Thread(target=requester) for _ in range(6)]
        workers.append(threading.Thread(target=manifest_poller))
        for thread in workers:
            thread.start()
        try:
            for cycle in range(8):
                spec = "demo:v2" if cycle % 2 == 0 else "demo:v1"
                status, payload, _ = _post_status(
                    server.url + "/reload", {"model": "demo", "spec": spec}
                )
                assert status == 200, payload
                assert payload["artifact"] == spec
                time.sleep(0.05)
        finally:
            stop.set()
            for thread in workers:
                thread.join(timeout=60.0)
        # Leave the shared fixture on its original version.
        _post_status(server.url + "/reload", {"model": "demo", "spec": "demo:v1"})
        assert not anomalies
        assert not manifest_failures
        assert served_specs >= {"demo:v1", "demo:v2"}, (
            "the race never actually observed both versions"
        )

    def test_reload_bumps_version_monotonically(self, serving_stack):
        server = serving_stack["server"]
        _, before, _ = _post_status(
            server.url + "/reload", {"model": "alt", "spec": "alt:v1"}
        )
        _, after, _ = _post_status(
            server.url + "/reload", {"model": "alt", "spec": "alt:v1"}
        )
        assert after["version"] == before["version"] + 1


class TestErrorPaths:
    def test_unknown_model_404(self, serving_stack, tiny_dataset):
        server = serving_stack["server"]
        batch = tiny_dataset.test_features[:2].tolist()
        for payload, path in (
            ({"features": batch}, "/models/ghost/predict"),
            ({"features": batch, "model": "ghost"}, "/predict"),
        ):
            status, body, _ = _post_status(server.url + path, payload)
            assert status == 404
            assert "ghost" in body["error"]

    def test_unknown_manifest_404(self, serving_stack):
        server = serving_stack["server"]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/models/ghost/manifest")
        assert excinfo.value.code == 404

    def test_malformed_reload_400(self, serving_stack):
        server = serving_stack["server"]
        for payload in (
            {"model": 42},
            {"spec": ["demo:v1"]},
            {"model": "demo", "spec": "no-such-artifact:v9"},
        ):
            status, body, _ = _post_status(server.url + "/reload", payload)
            assert status == 400, body
        status, _, _ = _post_status(server.url + "/reload", {"model": "ghost"})
        assert status == 404

    def test_reload_rejects_non_object_body(self, serving_stack):
        server = serving_stack["server"]
        request = urllib.request.Request(
            server.url + "/reload",
            data=b"[1, 2, 3]",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        excinfo.value.close()

    def test_bad_deadline_and_model_types_400(self, serving_stack, tiny_dataset):
        server = serving_stack["server"]
        batch = tiny_dataset.test_features[:2].tolist()
        status, _, _ = _post_status(
            server.url + "/predict", {"features": batch, "deadline_ms": -5}
        )
        assert status == 400
        status, _, _ = _post_status(
            server.url + "/predict", {"features": batch, "model": 7}
        )
        assert status == 400

    def test_full_queue_429_with_retry_after(self):
        gate = GateModel()
        server = ModelServer(
            gate, max_batch_size=1, max_wait_ms=0.0, queue_depth=1, port=0
        ).start()
        try:
            batch = [[0.0, 0.0, 0.0, 0.0]]
            predict_args = (server.url + "/predict", {"features": batch})
            first = threading.Thread(target=_post_status, args=predict_args)
            first.start()
            assert gate.entered.wait(timeout=10.0)
            second = threading.Thread(target=_post_status, args=predict_args)
            second.start()
            deadline = time.monotonic() + 5.0
            while server.pool.total_queue_size() < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            status, body, headers = _post_status(
                server.url + "/predict", {"features": batch}
            )
            assert status == 429, body
            assert int(headers["Retry-After"]) >= 1
            stats = server.stats_dict()
            assert stats["errors_by_status"].get("429") == 1
        finally:
            gate.release.set()
            first.join(timeout=30.0)
            second.join(timeout=30.0)
            server.shutdown()

    def test_expired_deadline_503(self):
        gate = GateModel()
        server = ModelServer(
            gate, max_batch_size=1, max_wait_ms=0.0, queue_depth=8, port=0
        ).start()
        try:
            batch = [[0.0, 0.0, 0.0, 0.0]]
            predict_args = (server.url + "/predict", {"features": batch})
            blocker = threading.Thread(target=_post_status, args=predict_args)
            blocker.start()
            assert gate.entered.wait(timeout=10.0)
            result = {}

            def doomed() -> None:
                result["outcome"] = _post_status(
                    server.url + "/predict",
                    {"features": batch, "deadline_ms": 25},
                )

            loser = threading.Thread(target=doomed)
            loser.start()
            time.sleep(0.08)
            gate.release.set()
            loser.join(timeout=30.0)
            blocker.join(timeout=30.0)
            status, body, _ = result["outcome"]
            assert status == 503, body
            assert "deadline" in body["error"]
        finally:
            gate.release.set()
            server.shutdown()

    def test_wrong_width_request_rejected_at_admission(self, serving_stack):
        """A request whose width disagrees with the model gets its own
        400 instead of poisoning the micro-batch it would have joined."""
        server = serving_stack["server"]
        status, body, _ = _post_status(
            server.url + "/predict", {"features": [[1.0, 2.0, 3.0]]}
        )
        assert status == 400
        assert "columns" in body["error"]
        # The scheduler is untouched: a correct request still serves.
        entry = server.pool.get("demo")
        good = [[0.0] * entry.num_features]
        status, _, _ = _post_status(server.url + "/predict", {"features": good})
        assert status == 200

    def test_unread_body_error_closes_keepalive_cleanly(self, serving_stack):
        """An error sent before the body is read must drop the keep-alive
        connection (regression: leftover body bytes used to be parsed as
        the next request line, poisoning the connection)."""
        import socket as socket_module

        server = serving_stack["server"]
        body = json.dumps({"features": [[1.0]]}).encode("utf-8")
        request = (
            f"POST /nope HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("ascii") + body
        with socket_module.create_connection(
            (server.host, server.port), timeout=10
        ) as sock:
            sock.sendall(request)
            response = b""
            while b"\r\n\r\n" not in response:
                response += sock.recv(65536)
            head = response.split(b"\r\n\r\n", 1)[0]
            assert b"404" in head.split(b"\r\n", 1)[0]
            assert b"Connection: close" in head
            # The server hangs up instead of misreading the body bytes.
            sock.settimeout(5.0)
            tail = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                tail += chunk
        assert b"Bad request" not in tail

    def test_concurrent_reloads_are_serialized(self, serving_stack):
        """Racing reloads must produce strictly distinct version numbers."""
        server = serving_stack["server"]
        base = _post_status(
            server.url + "/reload", {"model": "alt", "spec": "alt:v1"}
        )[1]["version"]
        results = []

        def reloader() -> None:
            status, payload, _ = _post_status(
                server.url + "/reload", {"model": "alt", "spec": "alt:v1"}
            )
            results.append((status, payload.get("version")))

        threads = [threading.Thread(target=reloader) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert all(status == 200 for status, _ in results)
        versions = sorted(version for _, version in results)
        assert versions == list(range(base + 1, base + 7))

    def test_errors_never_skew_throughput(self, trained_memhd, tiny_dataset):
        """The ServerStats regression fix, end to end: a burst of failing
        requests leaves queries_per_second untouched."""
        model, _ = trained_memhd
        with ModelServer(model, engine="packed", port=0) as server:
            batch = tiny_dataset.test_features[:8].tolist()
            _post_status(server.url + "/predict", {"features": batch})
            healthy = _get(server.url + "/stats")[1]
            for _ in range(5):
                status, _, _ = _post_status(
                    server.url + "/predict", {"features": batch, "model": "ghost"}
                )
                assert status == 404
            degraded = _get(server.url + "/stats")[1]
            assert degraded["queries_per_second"] == pytest.approx(
                healthy["queries_per_second"]
            )
            assert degraded["queries"] == healthy["queries"]
            assert degraded["errors"] == healthy["errors"] + 5
            assert degraded["errors_by_status"]["404"] == 5


class TestStatsSchema:
    def _schema(self, serving_stack, tiny_dataset):
        server = serving_stack["server"]
        _, predict, _ = _post_status(
            server.url + "/predict",
            {"features": tiny_dataset.test_features[:2].tolist()},
        )
        _, stats = _get(server.url + "/stats")
        model_stats = stats["models"]["demo"]
        return {
            "predict_response": sorted(predict),
            "stats": sorted(stats),
            "model_stats": sorted(model_stats),
            "scheduler_stats": sorted(model_stats["scheduler"]),
        }

    def test_stats_schema_matches_golden(self, serving_stack, tiny_dataset):
        """Pin the serving API schema (PR 3 golden-gate pattern).

        Regenerate after an intentional change with::

            REPRO_REGEN_GOLDEN=1 python -m pytest \
                tests/test_runtime_serving_v2.py -k schema
        """
        observed = self._schema(serving_stack, tiny_dataset)
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_SCHEMA_PATH.write_text(
                json.dumps(observed, indent=2, sort_keys=True) + "\n"
            )
        assert GOLDEN_SCHEMA_PATH.is_file(), (
            "golden schema missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        golden = json.loads(GOLDEN_SCHEMA_PATH.read_text())
        assert observed == golden, (
            "serving API schema drifted from tests/golden/"
            "serving_stats_schema.json; if intentional, regenerate with "
            "REPRO_REGEN_GOLDEN=1"
        )

    def test_queue_depth_and_histogram_accounting(self, trained_memhd, tiny_dataset):
        """Batch histogram over known sequential traffic: all singletons."""
        model, _ = trained_memhd
        with ModelServer(
            model, engine="packed", max_batch_size=8, max_wait_ms=0.0, port=0
        ) as server:
            for _ in range(4):
                _post_status(
                    server.url + "/predict",
                    {"features": tiny_dataset.test_features[:3].tolist()},
                )
            stats = _get(server.url + "/stats")[1]
            assert stats["queue_depth"] == 0
            scheduler = stats["models"]["default"]["scheduler"]
            assert scheduler["batches"] == 4
            assert scheduler["queries"] == 12
            assert scheduler["batch_size_histogram"] == {"3": 4}
            assert scheduler["mean_batch_rows"] == pytest.approx(3.0)
