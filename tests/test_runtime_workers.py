"""Prefork supervisor tests (repro.runtime.workers).

The scenarios the scale-out layer must survive:

* **graceful drain** -- SIGTERM while a request is mid-predict: the
  in-flight response still arrives, only then does the worker exit;
* **crash resilience** -- a SIGKILLed worker is respawned without the
  listening socket ever dropping (inherit mode keeps the accept queue
  alive in the parent across the gap);
* **observability** -- cluster ``/stats`` merges every worker's counters
  and attributes traffic per worker, ``/stats/local`` stays per-process;
* **coordinated reload** -- ``POST /reload`` fans out to every worker and
  each response is wholly one model version, never a mix.

Everything runs against real forked processes over loopback HTTP, so the
module is skipped where the ``fork`` start method is unavailable.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.io.registry import ArtifactRegistry
from repro.runtime.workers import (
    WorkerConfig,
    WorkerSupervisor,
    fork_available,
    reuseport_available,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="prefork serving requires the fork start method"
)


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post_status(url, payload):
    """POST returning (status, payload) without raising on 4xx/5xx."""
    try:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        body = json.loads(error.read().decode("utf-8"))
        error.close()
        return error.code, body


def _train(dataset, seed: int) -> MEMHDModel:
    model = MEMHDModel(
        dataset.num_features,
        dataset.num_classes,
        MEMHDConfig(dimension=48, columns=16, epochs=2, seed=seed),
        rng=seed,
    )
    model.fit(dataset.train_features, dataset.train_labels)
    return model


@pytest.fixture(scope="module")
def prefork_stack(tmp_path_factory, tiny_dataset):
    """Registry with two distinguishable 'demo' versions + probe answers."""
    store = ArtifactRegistry(tmp_path_factory.mktemp("prefork-store"))
    v1 = _train(tiny_dataset, seed=1)
    v2 = _train(tiny_dataset, seed=2)
    probe = tiny_dataset.test_features[:8]
    # The reload test asserts "wholly one version", which is vacuous if
    # both versions answer the probe identically.
    assert not np.array_equal(
        v1.predict(probe, engine="packed"), v2.predict(probe, engine="packed")
    )
    store.save(v1, "demo", tag="v1")
    store.save(v2, "demo", tag="v2")
    return {
        "store": store,
        "probe": probe.tolist(),
        "expected": {
            "v1": [int(x) for x in v1.predict(probe, engine="packed")],
            "v2": [int(x) for x in v2.predict(probe, engine="packed")],
        },
    }


def _config(stack, **overrides) -> WorkerConfig:
    settings = dict(
        models=("demo:v1",),
        store=str(stack["store"].root),
        engine="packed",
        mapped=True,
        max_wait_ms=1.0,
        drain_timeout=10.0,
    )
    settings.update(overrides)
    return WorkerConfig(**settings)


def _wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class SlowModel:
    """Wraps a trained model, stretching each predict to ~`delay` seconds.

    Forked into the worker with the config, it makes "a request is in
    flight right now" a state the drain test can reliably hit.
    """

    name = "slow"

    def __init__(self, inner, delay: float):
        self._inner = inner
        self._delay = delay
        self.num_features = inner.num_features

    def predict(self, features, engine="packed"):
        time.sleep(self._delay)
        return self._inner.predict(features, engine=engine)


class TestClusterServing:
    @pytest.mark.parametrize(
        "socket_mode",
        ["inherit"] + (["reuseport"] if reuseport_available() else []),
    )
    def test_bit_exact_over_both_socket_modes(self, prefork_stack, socket_mode):
        config = _config(prefork_stack)
        with WorkerSupervisor(config, workers=2, socket_mode=socket_mode) as supervisor:
            for _ in range(8):
                status, payload = _post_status(
                    supervisor.url + "/predict",
                    {"features": prefork_stack["probe"]},
                )
                assert status == 200
                assert payload["labels"] == prefork_stack["expected"]["v1"]
            status, health = _get(supervisor.url + "/healthz")
            assert status == 200
            assert health["worker"] in (0, 1)

    def test_supervisor_validation(self, prefork_stack):
        config = _config(prefork_stack)
        with pytest.raises(ValueError, match="workers"):
            WorkerSupervisor(config, workers=0)
        with pytest.raises(ValueError, match="socket_mode"):
            WorkerSupervisor(config, workers=2, socket_mode="bogus")
        with pytest.raises(ValueError):
            WorkerSupervisor(WorkerConfig(), workers=2)
        with pytest.raises(ValueError):
            WorkerSupervisor(WorkerConfig(models=("demo:v1",)), workers=2)


class TestGracefulDrain:
    def test_sigterm_completes_inflight_request(self, tiny_dataset):
        """SIGTERM mid-predict: the response lands, then the worker exits."""
        model = SlowModel(_train(tiny_dataset, seed=1), delay=0.6)
        probe = tiny_dataset.test_features[:4]
        expected = [int(x) for x in model._inner.predict(probe, engine="packed")]
        config = WorkerConfig(model=model, engine="packed", drain_timeout=15.0)
        supervisor = WorkerSupervisor(config, workers=1, respawn=False)
        try:
            supervisor.start()
            results = []

            def _fire():
                results.append(
                    _post_status(
                        supervisor.url + "/predict", {"features": probe.tolist()}
                    )
                )

            client = threading.Thread(target=_fire)
            client.start()
            # Let the request reach the worker's predict before the signal.
            time.sleep(0.25)
            (pid,) = supervisor.worker_pids().values()
            os.kill(pid, signal.SIGTERM)
            client.join(timeout=30.0)
            assert not client.is_alive(), "in-flight request never completed"
            ((status, payload),) = results
            assert status == 200, f"drained request failed: {payload}"
            assert payload["labels"] == expected
            assert _wait_until(lambda: supervisor.alive_count() == 0, timeout=20.0)
        finally:
            supervisor.shutdown(drain=False)


class TestCrashRespawn:
    def test_sigkill_respawns_without_dropping_listener(self, prefork_stack):
        """Inherit mode: the accept queue lives in the parent's listener,
        so even with every worker dead a connection is only delayed, never
        refused -- and the respawned worker then serves it."""
        config = _config(prefork_stack)
        with WorkerSupervisor(config, workers=1, socket_mode="inherit") as supervisor:
            status, payload = _post_status(
                supervisor.url + "/predict", {"features": prefork_stack["probe"]}
            )
            assert status == 200
            (old_pid,) = supervisor.worker_pids().values()
            os.kill(old_pid, signal.SIGKILL)
            assert _wait_until(
                lambda: supervisor.worker_pids().get(0) not in (None, old_pid)
            ), "worker was not respawned"
            status, payload = _post_status(
                supervisor.url + "/predict", {"features": prefork_stack["probe"]}
            )
            assert status == 200
            assert payload["labels"] == prefork_stack["expected"]["v1"]
            assert supervisor.respawns >= 1
            status, stats = _get(supervisor.url + "/stats")
            assert stats["respawns"] >= 1


class TestStatsAggregation:
    def test_three_level_stats(self, prefork_stack):
        config = _config(prefork_stack)
        with WorkerSupervisor(config, workers=2) as supervisor:
            issued = 10
            for _ in range(issued):
                status, _ = _post_status(
                    supervisor.url + "/predict",
                    {"features": prefork_stack["probe"]},
                )
                assert status == 200

            status, cluster = _get(supervisor.url + "/stats")
            assert status == 200
            assert cluster["workers_total"] == 2
            assert cluster["workers_alive"] == 2
            assert set(cluster["workers"]) == {"0", "1"}
            assert (
                sum(snap["requests"] for snap in cluster["workers"].values())
                >= issued
            )
            assert cluster["requests"] >= issued
            assert cluster["queries"] >= issued * len(prefork_stack["probe"])
            assert np.isfinite(cluster["queries_per_second"])
            # Per-model merge: one 'demo' entry summing both workers.
            assert cluster["models"]["demo"]["queries"] >= issued * len(
                prefork_stack["probe"]
            )

            status, local = _get(supervisor.url + "/stats/local")
            assert status == 200
            assert local["worker"] in (0, 1)
            assert "workers" not in local, "/stats/local must stay per-process"


class TestReloadFanout:
    def test_reload_reaches_every_worker_wholly_one_version(self, prefork_stack):
        config = _config(prefork_stack)
        expected = prefork_stack["expected"]
        probe = prefork_stack["probe"]
        with WorkerSupervisor(config, workers=2) as supervisor:
            observed = []
            stop = threading.Event()

            def _stream():
                while not stop.is_set():
                    status, payload = _post_status(
                        supervisor.url + "/predict", {"features": probe}
                    )
                    if status == 200:
                        observed.append(payload["labels"])

            client = threading.Thread(target=_stream)
            client.start()
            try:
                time.sleep(0.2)
                status, reply = _post_status(
                    supervisor.url + "/reload",
                    {"model": "demo", "spec": "demo:v2"},
                )
            finally:
                stop.set()
                client.join(timeout=30.0)
            assert status == 200, f"reload failed: {reply}"
            assert reply["status"] == "reloaded"
            assert set(reply["workers"]) == {"0", "1"}

            # Racing responses may be v1 or v2, but never a blend.
            for labels in observed:
                assert labels in (expected["v1"], expected["v2"])
            # After the fan-out both workers answer with v2, every time.
            for _ in range(8):
                status, payload = _post_status(
                    supervisor.url + "/predict", {"features": probe}
                )
                assert status == 200
                assert payload["labels"] == expected["v2"]
