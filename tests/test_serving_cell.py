"""Serving-load sweep cells: differential + schema tests.

The serving-load cell promises a clean split: *deterministic* metrics
(request/error accounting, the prediction digest) that the drift gates
compare, and *volatile* ones (QPS, latency quantiles) that they skip.
Locked down three ways:

* a **differential test** -- the sweep cell vs a hand-rolled
  train + serve + ``run_load`` + ``prediction_digest`` session must agree
  on every deterministic metric, bit-exact digest included;
* a **golden metrics schema** (``tests/golden/serving_cell_schema.json``,
  regenerate with ``REPRO_REGEN_GOLDEN=1``) so a metric silently changing
  name, type, or determinism class fails loudly;
* **reporting coverage** -- ``repro sweep report`` and the orchestrate QA
  report render the p99/QPS capacity-planning table for serving records.
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.eval.serving_cell import DIGEST_BATCHES, execute_serving_job
from repro.eval.sweep import SweepError, SweepSpec, execute_job, model_for_config
from repro.eval.store import ResultStore, is_volatile_metric
from repro.eval.reporting import format_serving_records
from repro.runtime.loadtest import prediction_digest, run_load
from repro.runtime.server import ModelServer

GOLDEN_SCHEMA = Path(__file__).parent / "golden" / "serving_cell_schema.json"

#: One serving-load cell, kept tiny: 16 requests against a packed memhd.
SERVING_SPEC = SweepSpec(
    kind="serving-load",
    models=("memhd",),
    datasets=("mnist",),
    dimensions=(32,),
    columns=(16,),
    engines=("packed",),
    scale=0.01,
    epochs=1,
    seed=7,
    serving_concurrency=(2,),
    serving_workers=(1,),
    serving_batch=(4,),
    serving_requests=16,
)

#: Deterministic metrics: compared by the differential test and drift
#: gates.  Everything else the cell emits must be volatile.
DETERMINISTIC = {
    "train_accuracy",
    "test_accuracy",
    "memory_kib",
    "requests",
    "queries",
    "errors",
    "error_rate",
    "predictions_sha256",
}


@pytest.fixture(scope="module")
def cell_job():
    jobs = SERVING_SPEC.expand()
    assert len(jobs) == 1
    return jobs[0]


@pytest.fixture(scope="module")
def cell_result(cell_job):
    """The sweep engine's view of the cell (via the execute_job dispatcher)."""
    return execute_job(cell_job.as_dict())


class TestDifferential:
    def test_cell_agrees_with_direct_loadtest_session(self, cell_job, cell_result):
        """Sweep cell == hand-rolled serve/load/digest on deterministic metrics."""
        config = cell_job.config
        model, dataset = model_for_config(config, cell_job.seed)
        model.fit(dataset.train_features, dataset.train_labels)
        server = ModelServer(
            model, engine=config["engine"], host="127.0.0.1", port=0
        ).start()
        try:
            load = run_load(
                server.url,
                num_features=dataset.num_features,
                mode=config["serving_mode"],
                concurrency=config["serving_concurrency"],
                batch_size=config["serving_batch"],
                seed=cell_job.seed,
                total_requests=config["serving_requests"],
            )
            digest = prediction_digest(
                server.url,
                num_features=dataset.num_features,
                batch_size=config["serving_batch"],
                count=DIGEST_BATCHES,
                seed=cell_job.seed,
            )
        finally:
            server.shutdown()
        row = load.as_dict()
        metrics = cell_result["metrics"]
        assert metrics["requests"] == row["requests"] == 16
        assert metrics["queries"] == row["queries"] == 16 * 4
        assert metrics["errors"] == row["errors"] == 0
        assert metrics["error_rate"] == 0.0
        # Bit-exact predictions: same model bits on both sides.
        assert metrics["predictions_sha256"] == digest

    def test_cell_is_reproducible_across_runs(self, cell_job, cell_result):
        """A second execution reproduces every deterministic metric exactly."""
        again = execute_serving_job(cell_job.as_dict())
        for name in DETERMINISTIC:
            assert again["metrics"][name] == cell_result["metrics"][name], name

    def test_prefork_pool_serves_identical_predictions(self, cell_job, cell_result):
        """workers=2 (prefork supervisor) changes nothing deterministic."""
        from repro.runtime.workers import fork_available

        if not fork_available():
            pytest.skip("prefork pool requires fork()")
        payload = cell_job.as_dict()
        payload["config"] = dict(payload["config"], serving_workers=2)
        pooled = execute_serving_job(payload)
        for name in DETERMINISTIC:
            assert pooled["metrics"][name] == cell_result["metrics"][name], name


class TestMetricsSchema:
    def test_schema_matches_golden(self, cell_result):
        """Name -> (type, determinism class) of every cell metric, pinned."""
        schema = {
            name: {
                "type": type(value).__name__,
                "volatile": is_volatile_metric(name),
            }
            for name, value in sorted(cell_result["metrics"].items())
        }
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_SCHEMA.parent.mkdir(parents=True, exist_ok=True)
            rendered = json.dumps(schema, indent=2, sort_keys=True)
            GOLDEN_SCHEMA.write_text(rendered + "\n")
        assert GOLDEN_SCHEMA.is_file(), (
            f"golden schema missing; regenerate with REPRO_REGEN_GOLDEN=1 "
            f"({GOLDEN_SCHEMA})"
        )
        assert schema == json.loads(GOLDEN_SCHEMA.read_text())

    def test_deterministic_and_volatile_metrics_partition_cleanly(self, cell_result):
        """Every metric is either drift-gated or explicitly volatile."""
        for name in cell_result["metrics"]:
            assert (name in DETERMINISTIC) != is_volatile_metric(name), name

    def test_store_diff_gates_deterministic_but_skips_volatile(
        self, tmp_path, cell_result
    ):
        left = ResultStore(tmp_path / "left.jsonl")
        right = ResultStore(tmp_path / "right.jsonl")
        left.append(
            cell_result["config"], cell_result["metrics"], key=cell_result["key"]
        )
        # A rerun with different machine measurements but identical
        # deterministic metrics must diff clean...
        noisy = dict(cell_result["metrics"], qps=1.0, p99_ms=9999.0, duration_s=42.0)
        right.append(cell_result["config"], noisy, key=cell_result["key"])
        assert left.diff(right).is_clean
        # ... while a deterministic drift (digest changed) must not.
        tampered = ResultStore(tmp_path / "tampered.jsonl")
        bad = dict(cell_result["metrics"], predictions_sha256="0" * 16)
        tampered.append(cell_result["config"], bad, key=cell_result["key"])
        diff = left.diff(tampered)
        assert not diff.is_clean
        assert {change.metric for change in diff.changed} == {"predictions_sha256"}


class TestSpecValidation:
    def test_serving_load_is_ideal_only(self):
        with pytest.raises(SweepError, match="ideal-only"):
            SweepSpec(kind="serving-load", bit_flip_probabilities=(0.0, 0.01))
        with pytest.raises(SweepError, match="ideal-only"):
            SweepSpec(kind="serving-load", adc_bits=(4,))

    def test_open_mode_requires_rate(self):
        with pytest.raises(SweepError, match="rate"):
            SweepSpec(kind="serving-load", serving_modes=("open",))
        spec = SweepSpec(
            kind="serving-load", serving_modes=("open",), serving_rate=50.0
        )
        assert spec.serving_rate == 50.0

    def test_unknown_kind_and_mode_rejected(self):
        with pytest.raises(SweepError):
            SweepSpec(kind="latency")
        with pytest.raises(SweepError):
            SweepSpec(kind="serving-load", serving_modes=("bursty",))

    def test_accuracy_cells_carry_no_serving_keys(self):
        """Pinned: accuracy configs are byte-identical to pre-serving repros."""
        spec = SweepSpec(models=("memhd",), dimensions=(32,), columns=(16,))
        for job in spec.expand():
            assert "kind" not in job.config
            assert not any(key.startswith("serving_") for key in job.config)

    def test_serving_points_share_one_trained_model_seed(self):
        """Serving knobs are not training fields: one model, many points."""
        spec = SweepSpec(
            kind="serving-load",
            models=("memhd",),
            dimensions=(32,),
            columns=(16,),
            serving_concurrency=(1, 2, 4),
            serving_workers=(1, 2),
        )
        jobs = spec.expand()
        assert len(jobs) == 6
        assert len({job.seed for job in jobs}) == 1
        assert len({job.key for job in jobs}) == 6  # ... but distinct cells


class TestReporting:
    def _fabricated_records(self):
        config = {
            "model": "memhd",
            "dataset": "mnist",
            "dimension": 32,
            "engine": "packed",
            "kind": "serving-load",
            "serving_mode": "closed",
            "serving_workers": 2,
            "serving_concurrency": 4,
            "serving_batch": 1,
        }
        metrics = {
            "requests": 64,
            "errors": 0,
            "qps": 1234.5,
            "p50_ms": 1.25,
            "p95_ms": 2.5,
            "p99_ms": 3.75,
            "test_accuracy": 0.5,
        }
        return [{"config": config, "metrics": metrics}]

    def test_format_serving_records_renders_capacity_columns(self):
        table = format_serving_records(self._fabricated_records(), title="serving")
        assert "p99_ms" in table and "qps" in table
        assert "1234.50" in table and "3.75" in table

    def test_sweep_report_renders_serving_table(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "results.jsonl")
        record = self._fabricated_records()[0]
        store.append(record["config"], record["metrics"])
        assert main(["sweep", "report", "--results", str(store.path)]) == 0
        out = capsys.readouterr().out
        assert "Serving-load results" in out
        assert "p99_ms" in out
