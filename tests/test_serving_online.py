"""Integration tests of the continual-learning serving loop (PR 8).

Covers the whole lifecycle of :mod:`repro.runtime.online`:

* unit behaviour of the bounded :class:`FeedbackBuffer` and the
  promotion gate (a failed shadow eval must never reach traffic);
* the ``POST /feedback`` HTTP contract (ack payload, 400/404/429/503);
* the drift-recovery scenario: a two-class label swap streamed through
  ``/feedback`` while ``repro loadtest`` traffic runs -- served accuracy
  recovers to within 2% of a from-scratch retrain, with zero 5xx and
  zero torn-version responses during promotions, and the promotion
  lineage supports bit-exact rollback via ``name:tag``;
* prefork chaos: a worker SIGKILLed mid-feedback-stream loses no
  200-acknowledged feedback, and its respawned replacement converges to
  the promoted version.
"""

import os
import signal
import threading
import time
import urllib.error
import urllib.request
import json

import numpy as np
import pytest

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.data.synthetic import SyntheticSpec, make_synthetic_dataset
from repro.eval.metrics import accuracy
from repro.io.registry import ArtifactRegistry
from repro.runtime.loadtest import run_load, stream_feedback
from repro.runtime.online import (
    DRIFT_STORE_FILENAME,
    BufferFullError,
    FeedbackBuffer,
    LearnerClosedError,
    OnlineConfig,
    OnlineLearner,
    feedback_error_status,
)
from repro.runtime.server import ModelServer
from repro.runtime.workers import WorkerConfig, WorkerSupervisor, fork_available

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


# --------------------------------------------------------------------- helpers
def _swap_labels(labels: np.ndarray) -> np.ndarray:
    """The drift scenario: classes 0 and 1 trade places."""
    swapped = np.array(labels)
    swapped[np.array(labels) == 0] = 1
    swapped[np.array(labels) == 1] = 0
    return swapped


def _post(url: str, path: str, payload: dict, timeout: float = 15.0):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _get(url: str, path: str, timeout: float = 15.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return json.loads(response.read())


def _wait_folded(url: str, timeout: float = 20.0) -> None:
    """Block until the learner's buffer is empty (deterministic folds)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if _get(url, "/stats")["online"]["feedback"]["buffered"] == 0:
            return
        time.sleep(0.01)
    raise TimeoutError("feedback buffer never drained")


@pytest.fixture(scope="module")
def drift_dataset():
    spec = SyntheticSpec(
        num_classes=5,
        num_features=24,
        train_per_class=60,
        test_per_class=20,
        modes_per_class=3,
        latent_dim=8,
        class_separation=3.0,
        noise_scale=0.3,
    )
    return make_synthetic_dataset("tiny5", spec, rng=7)


@pytest.fixture(scope="module")
def model_config():
    return MEMHDConfig(dimension=64, columns=24, epochs=5, seed=0)


@pytest.fixture(scope="module")
def base_model(drift_dataset, model_config):
    model = MEMHDModel(
        drift_dataset.num_features, drift_dataset.num_classes, model_config, rng=0
    )
    model.fit(drift_dataset.train_features, drift_dataset.train_labels)
    return model


@pytest.fixture()
def registry(tmp_path, base_model):
    """A fresh store holding the base model as ``tiny5:v1``."""
    store = ArtifactRegistry(tmp_path / "store")
    store.save(base_model, "tiny5")
    return store


# -------------------------------------------------------------- feedback buffer
class TestFeedbackBuffer:
    def test_fifo_order(self):
        buffer = FeedbackBuffer(capacity=8)
        rows = [(np.full(3, float(i)), i) for i in range(5)]
        buffer.add(rows[:3])
        buffer.add(rows[3:])
        assert len(buffer) == 5
        drained = buffer.drain()
        assert [label for _, label in drained] == [0, 1, 2, 3, 4]
        assert len(buffer) == 0

    def test_admission_is_all_or_nothing(self):
        buffer = FeedbackBuffer(capacity=4)
        buffer.add([(np.zeros(2), 0)] * 3)
        with pytest.raises(BufferFullError):
            buffer.add([(np.zeros(2), 1)] * 2)
        # The rejected batch left nothing behind.
        assert len(buffer) == 3
        assert all(label == 0 for _, label in buffer.drain())

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FeedbackBuffer(capacity=0)

    def test_error_status_mapping(self):
        assert feedback_error_status(BufferFullError("x")) == 429
        assert feedback_error_status(LearnerClosedError("x")) == 503
        assert feedback_error_status(ValueError("x")) == 400
        assert feedback_error_status(RuntimeError("x")) == 500


class TestOnlineConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"buffer_size": 0},
            {"min_feedback": 0},
            {"eval_fraction": 1.0},
            {"eval_fraction": -0.1},
            {"eval_window": 0},
            {"fold_chunk": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            OnlineConfig(**kwargs)


# ------------------------------------------------------------- learner gating
class TestPromotionGate:
    def _learner(self, registry, config, promote=None):
        calls = []

        def _promote(payload):
            calls.append(payload)

        learner = OnlineLearner(
            registry, "tiny5", config, promote=promote or _promote, model_key="tiny5"
        )
        learner._promote_calls = calls
        return learner

    def test_failed_gate_never_promotes(self, registry, drift_dataset):
        """A shadow that cannot clear the threshold must not reach traffic."""
        learner = self._learner(
            registry,
            OnlineConfig(
                promote_threshold=2.0,  # unreachable: accuracy <= 1
                min_feedback=16,
                eval_fraction=0.25,
                learning_rate=0.5,
            ),
        )
        learner.submit(
            drift_dataset.train_features[:64], drift_dataset.train_labels[:64]
        )
        summary = learner.step(force=True)
        assert summary is not None and summary["gate"] == "failed"
        assert summary["promoted"] is False
        assert learner._promote_calls == []
        stats = learner.stats()
        assert stats["promotions"]["count"] == 0
        assert stats["shadow"]["gate_failures"] >= 1
        assert stats["artifact"] == "tiny5:v1"
        learner.stop(drain=False)

    def test_no_holdout_never_promotes(self, registry, drift_dataset):
        """With gating disabled (eval_fraction=0) nothing is ever promoted --
        an unevaluated shadow must not reach traffic."""
        learner = self._learner(
            registry,
            OnlineConfig(min_feedback=16, eval_fraction=0.0, learning_rate=0.5),
        )
        learner.submit(
            drift_dataset.train_features[:64], drift_dataset.train_labels[:64]
        )
        summary = learner.step(force=True)
        assert summary["gate"] == "no-holdout"
        assert learner._promote_calls == []
        assert learner.stats()["promotions"]["count"] == 0
        learner.stop(drain=False)

    def test_failing_promote_callback_keeps_previous_version(
        self, registry, drift_dataset
    ):
        def _broken(payload):
            raise RuntimeError("reload fan-out died")

        learner = OnlineLearner(
            registry,
            "tiny5",
            # promote_margin=-1 makes the gate pass on every round, so the
            # only thing standing between the shadow and traffic is the
            # (broken) promote callback.
            OnlineConfig(
                min_feedback=16,
                eval_fraction=0.25,
                learning_rate=0.5,
                promote_margin=-1.0,
            ),
            promote=_broken,
            model_key="tiny5",
        )
        for _ in range(3):
            learner.submit(
                drift_dataset.train_features[:80], drift_dataset.train_labels[:80]
            )
            learner.step(force=True)
        stats = learner.stats()
        assert stats["promotions"]["count"] == 0
        assert stats["promotions"]["failed"] >= 1
        assert learner.current_spec == "tiny5:v1"
        learner.stop(drain=False)

    def test_submit_after_stop_is_rejected(self, registry, drift_dataset):
        learner = self._learner(registry, OnlineConfig(min_feedback=16))
        learner.stop(drain=False)
        with pytest.raises(LearnerClosedError):
            learner.submit(
                drift_dataset.train_features[:4], drift_dataset.train_labels[:4]
            )

    def test_drain_flush_persists_acked_feedback(self, registry, drift_dataset):
        """stop(drain=True) folds the sub-threshold backlog and writes an
        incremental checkpoint, so acknowledged feedback is never lost."""
        learner = self._learner(
            registry,
            OnlineConfig(
                min_feedback=10_000,  # the background fold never triggers
                eval_fraction=0.25,
                learning_rate=0.5,
            ),
        )
        ack = learner.submit(
            drift_dataset.train_features[:40], drift_dataset.train_labels[:40]
        )
        assert ack["status"] == "buffered"
        assert ack["accepted"] == 40
        learner.stop(drain=True)
        stats = learner.stats()
        assert stats["feedback"]["folded"] + stats["feedback"]["held_out"] == 40
        assert stats["promotions"]["checkpoints"] >= 1
        # The drain-flush checkpoint records its feedback lineage.
        _, manifest, resolved = registry.load_with_manifest("tiny5")
        assert resolved != "tiny5:v1"
        assert manifest.lineage is not None
        assert manifest.lineage["kind"] in ("drain-flush", "online-promotion")
        assert manifest.lineage["parent"] == "tiny5:v1"
        assert manifest.lineage["feedback_folded"] == stats["feedback"]["folded"]

    def test_lineage_roundtrip_and_rollback(self, registry, drift_dataset, base_model):
        """Promotion writes a lineage-stamped checkpoint; the parent tag
        still loads bit-exactly (full rollback via name:tag)."""
        learner = self._learner(
            registry,
            OnlineConfig(
                min_feedback=16,
                eval_fraction=0.25,
                learning_rate=0.5,
                promote_margin=-1.0,  # gate passes every round
            ),
        )
        for _ in range(4):
            learner.submit(
                drift_dataset.train_features[:80], drift_dataset.train_labels[:80]
            )
            learner.step(force=True)
        stats = learner.stats()
        assert stats["promotions"]["count"] >= 1
        promoted = stats["promotions"]["last_spec"]
        _, manifest, _ = registry.load_with_manifest(promoted)
        assert manifest.lineage["kind"] == "online-promotion"
        # The base manifest predates the lineage field and reads as None.
        _, base_manifest, _ = registry.load_with_manifest("tiny5:v1")
        assert base_manifest.lineage is None
        # Rollback: the original tag still holds the original weights.
        rolled_back, _, _ = registry.load_with_manifest("tiny5:v1")
        np.testing.assert_array_equal(
            rolled_back.predict(drift_dataset.test_features),
            base_model.predict(drift_dataset.test_features),
        )
        learner.stop(drain=False)


# ----------------------------------------------------------- the HTTP contract
class TestFeedbackEndpoint:
    @pytest.fixture()
    def online_server(self, registry):
        server = ModelServer(
            models=["tiny5"],
            registry=registry,
            online=OnlineConfig(
                promote_threshold=2.0,  # endpoint tests never promote
                min_feedback=10_000,
                interval_s=30.0,
            ),
            port=0,
        )
        server.start()
        yield server
        server.shutdown()

    def test_ack_payload(self, online_server, drift_dataset):
        status, body, _ = _post(
            online_server.url,
            "/feedback",
            {
                "features": drift_dataset.train_features[:8].tolist(),
                "labels": drift_dataset.train_labels[:8].astype(int).tolist(),
            },
        )
        assert status == 200
        assert body["status"] == "buffered"
        assert body["model"] == "tiny5"
        assert body["accepted"] == 8
        assert body["held_out"] + body["buffered"] == 8

    def test_routed_path_matches_root(self, online_server, drift_dataset):
        status, body, _ = _post(
            online_server.url,
            "/models/tiny5/feedback",
            {
                "features": drift_dataset.train_features[:4].tolist(),
                "labels": drift_dataset.train_labels[:4].astype(int).tolist(),
            },
        )
        assert status == 200 and body["accepted"] == 4

    @pytest.mark.parametrize(
        "payload",
        [
            {"features": [[0.0] * 24]},  # labels missing
            {"labels": [0]},  # features missing
            {"features": [[0.0] * 3], "labels": [0]},  # wrong width
            {"features": [[0.0] * 24], "labels": [99]},  # label out of range
            {"features": [[0.0] * 24], "labels": [0, 1]},  # length mismatch
            {"features": [], "labels": []},  # empty batch
        ],
    )
    def test_malformed_bodies_are_400(self, online_server, payload):
        status, body, _ = _post(online_server.url, "/feedback", payload)
        assert status == 400
        assert "error" in body

    def test_unknown_model_is_404(self, online_server):
        status, _, _ = _post(
            online_server.url,
            "/models/nope/feedback",
            {"features": [[0.0] * 24], "labels": [0]},
        )
        assert status == 404

    def test_disabled_server_is_503(self, registry):
        with ModelServer(models=["tiny5"], registry=registry, port=0) as server:
            status, body, _ = _post(
                server.url, "/feedback", {"features": [[0.0] * 24], "labels": [0]}
            )
            assert status == 503
            assert "online learning is not enabled" in body["error"]
            assert server.stats_dict()["online"] == {"enabled": False}

    def test_full_buffer_sheds_with_429(self, registry, drift_dataset):
        server = ModelServer(
            models=["tiny5"],
            registry=registry,
            online=OnlineConfig(
                buffer_size=2,
                min_feedback=10_000,  # nothing ever drains the buffer
                interval_s=30.0,
                eval_fraction=0.0,
            ),
            port=0,
        )
        with server:
            body = {
                "features": drift_dataset.train_features[:2].tolist(),
                "labels": drift_dataset.train_labels[:2].astype(int).tolist(),
            }
            status, _, _ = _post(server.url, "/feedback", body)
            assert status == 200
            status, reply, headers = _post(server.url, "/feedback", body)
            assert status == 429
            assert "Retry-After" in headers
            stats = server.stats_dict()["online"]
            assert stats["feedback"]["rejected"] == 2
            assert stats["feedback"]["accepted"] == 2

    def test_stats_block_shape(self, online_server):
        block = _get(online_server.url, "/stats")["online"]
        assert block["enabled"] is True
        assert block["model"] == "tiny5"
        assert block["artifact"] == "tiny5:v1"
        assert set(block["feedback"]) == {
            "requests",
            "accepted",
            "rejected",
            "buffered",
            "held_out",
            "eval_window",
            "folded",
        }
        assert set(block["shadow"]) == {
            "rounds",
            "updates",
            "last_shadow_accuracy",
            "last_live_accuracy",
            "gate_passes",
            "gate_failures",
        }
        assert set(block["promotions"]) == {
            "count",
            "failed",
            "checkpoints",
            "last_spec",
            "last_unix",
        }


# --------------------------------------------------------------- drift recovery
class TestDriftRecovery:
    def test_label_shift_recovers_with_zero_5xx_and_no_torn_versions(
        self, registry, drift_dataset, model_config, base_model
    ):
        """The PR 8 acceptance scenario, single-process edition.

        A two-class label swap is streamed through ``/feedback`` while
        predict traffic keeps flowing; the gated shadow promotions must
        carry served accuracy back to within 2% of a from-scratch
        retrain, no response may 5xx, and every response must be wholly
        attributable to one model version.
        """
        train_swapped = _swap_labels(drift_dataset.train_labels)
        test_swapped = _swap_labels(drift_dataset.test_labels)
        server = ModelServer(
            models=["tiny5"],
            registry=registry,
            online=OnlineConfig(
                promote_threshold=0.5,
                min_feedback=32,
                interval_s=0.02,
                eval_fraction=0.125,
                learning_rate=0.5,
            ),
            port=0,
        )
        server.start()
        url = server.url
        try:
            # Pre-drift sanity: the base model is good on the original
            # labels and poor on the swapped ones.
            _, before, _ = _post(
                url, "/predict", {"features": drift_dataset.test_features.tolist()}
            )
            assert before["artifact"] == "tiny5:v1"
            pre_drift = accuracy(np.array(before["labels"]), test_swapped)

            # Concurrent watcher: /predict + /manifest while promotions
            # happen; collects (version, artifact) pairs and any 5xx.
            observed: list = []
            server_errors: list = []
            stop_watch = threading.Event()

            def _watch():
                probe = drift_dataset.test_features[:4].tolist()
                while not stop_watch.is_set():
                    try:
                        status, body, _ = _post(url, "/predict", {"features": probe})
                    except (urllib.error.URLError, OSError):
                        continue
                    if status >= 500:
                        server_errors.append(("predict", status))
                    elif len(body.get("labels", [])) != 4:
                        server_errors.append(("predict-body", body))
                    else:
                        observed.append((body["version"], body["artifact"]))
                    _get(url, "/manifest")  # manifest endpoint stays live

            watcher = threading.Thread(target=_watch, daemon=True)
            watcher.start()

            # Background loadtest traffic during the first drift epochs.
            load_report = {}

            def _load():
                load_report["report"] = run_load(
                    url, concurrency=4, duration_seconds=1.0, batch_size=2, seed=3
                )

            loader = threading.Thread(target=_load, daemon=True)
            loader.start()

            rng = np.random.default_rng(5)
            for _ in range(10):
                order = rng.permutation(len(train_swapped))
                for start in range(0, len(order), 64):
                    idx = order[start : start + 64]
                    status, body, _ = _post(
                        url,
                        "/feedback",
                        {
                            "features": drift_dataset.train_features[idx].tolist(),
                            "labels": train_swapped[idx].astype(int).tolist(),
                        },
                    )
                    assert status == 200, body
                    _wait_folded(url)
            loader.join(timeout=30.0)
            stop_watch.set()
            watcher.join(timeout=10.0)

            stats = _get(url, "/stats")["online"]
            assert stats["promotions"]["count"] >= 1
            promoted_spec = stats["promotions"]["last_spec"]
            assert promoted_spec is not None and promoted_spec != "tiny5:v1"

            # 1) no torn versions: monotone version numbers, and one
            # artifact per served version.
            assert server_errors == []
            versions = [version for version, _ in observed]
            assert versions == sorted(versions)
            by_version: dict = {}
            for version, artifact in observed:
                assert by_version.setdefault(version, artifact) == artifact
            # 2) the concurrent loadtest saw no 5xx either.
            report = load_report["report"]
            assert all(
                status < 500 for status in report.errors_by_status
            ), report.errors_by_status

            # 3) recovery: the served (promoted) model is within 2% of a
            # from-scratch retrain on the shifted distribution.
            _, after, _ = _post(
                url, "/predict", {"features": drift_dataset.test_features.tolist()}
            )
            assert after["artifact"] == promoted_spec
            served = accuracy(np.array(after["labels"]), test_swapped)
            retrain = MEMHDModel(
                drift_dataset.num_features,
                drift_dataset.num_classes,
                model_config,
                rng=0,
            )
            retrain.fit(drift_dataset.train_features, train_swapped)
            retrain_accuracy = accuracy(
                retrain.predict(drift_dataset.test_features), test_swapped
            )
            assert served >= retrain_accuracy - 0.02, (
                f"served {served:.3f} vs retrain {retrain_accuracy:.3f}"
            )
            assert served > pre_drift + 0.2  # genuinely recovered, not noise

            # 4) lineage: the promoted checkpoint's ancestry walks back
            # to the base tag.
            _, manifest, _ = registry.load_with_manifest(promoted_spec)
            assert manifest.lineage["kind"] == "online-promotion"
            spec_chain = [promoted_spec]
            while manifest.lineage is not None:
                parent = manifest.lineage["parent"]
                spec_chain.append(parent)
                _, manifest, _ = registry.load_with_manifest(parent)
            assert spec_chain[-1] == "tiny5:v1"

            # 5) drift records landed in the PR 3 ResultStore next to the
            # artifact.
            drift_path = registry.root / "tiny5" / DRIFT_STORE_FILENAME
            assert drift_path.is_file()
            from repro.eval.store import ResultStore

            records = ResultStore(drift_path).records()
            assert len(records) >= stats["shadow"]["rounds"] - 1
            assert any(record.metrics["promoted"] for record in records)
            assert all(
                record.config["event"] == "shadow-eval" for record in records
            )

            # 6) full rollback via name:tag -- the served model returns
            # bit-exactly to the pre-drift weights.
            status, reload_body, _ = _post(
                url, "/reload", {"model": "tiny5", "spec": "tiny5:v1"}
            )
            assert status == 200 and reload_body["artifact"] == "tiny5:v1"
            _, rolled, _ = _post(
                url, "/predict", {"features": drift_dataset.test_features.tolist()}
            )
            assert rolled["artifact"] == "tiny5:v1"
            np.testing.assert_array_equal(
                np.array(rolled["labels"]),
                base_model.predict(drift_dataset.test_features),
            )
        finally:
            server.shutdown()


# ----------------------------------------------------------------- chaos (fork)
@pytest.mark.skipif(not fork_available(), reason="prefork requires fork()")
class TestPreforkChaos:
    def test_sigkill_mid_stream_loses_no_acked_feedback(
        self, registry, drift_dataset
    ):
        """SIGKILL a worker mid-feedback-stream: every 200-acked sample is
        in the supervisor's learner, the respawned worker converges to the
        promoted version, and the graceful drain persists the backlog."""
        train_swapped = _swap_labels(drift_dataset.train_labels)
        config = WorkerConfig(
            models=("tiny5",),
            store=str(registry.root),
            online=OnlineConfig(
                promote_threshold=0.5,
                min_feedback=32,
                interval_s=0.02,
                eval_fraction=0.125,
                learning_rate=0.5,
            ),
        )
        supervisor = WorkerSupervisor(config, workers=2, port=0)
        supervisor.start()
        url = supervisor.url
        acked = 0
        try:
            rng = np.random.default_rng(5)
            killed = False
            for epoch in range(6):
                order = rng.permutation(len(train_swapped))
                for start in range(0, len(order), 64):
                    idx = order[start : start + 64]
                    # stream_feedback's retry loop is the chaos-tolerant
                    # client: a batch that died with the worker (status 0,
                    # never acked) is re-sent and only counted once acked.
                    result = stream_feedback(
                        url,
                        drift_dataset.train_features[idx],
                        train_swapped[idx],
                        batch_size=64,
                        retries=10,
                    )
                    acked += result["acked"]
                    assert result["acked"] == len(idx), result
                    if epoch == 2 and not killed:
                        victim = next(iter(supervisor.worker_pids().values()))
                        os.kill(victim, signal.SIGKILL)
                        killed = True
                _wait_folded(url)
            assert killed

            # The replacement worker comes back and resyncs.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and supervisor.alive_count() < 2:
                time.sleep(0.1)
            assert supervisor.alive_count() == 2
            assert supervisor.respawns >= 1

            stats = _get(url, "/stats")
            online = stats["online"]
            # No 200-acknowledged feedback was lost to the SIGKILL.
            assert online["feedback"]["accepted"] >= acked
            assert online["promotions"]["count"] >= 1
            promoted_spec = online["promotions"]["last_spec"]

            # Every worker (including the respawned one) serves exactly
            # the promoted artifact -- poll briefly while the resync
            # replay lands.
            deadline = time.monotonic() + 20.0
            artifacts = {}
            while time.monotonic() < deadline:
                stats = _get(url, "/stats")
                artifacts = {
                    worker_id: snapshot["models"]["tiny5"]["artifact"]
                    for worker_id, snapshot in stats["workers"].items()
                }
                if len(artifacts) == 2 and set(artifacts.values()) == {
                    stats["online"]["promotions"]["last_spec"]
                }:
                    break
                time.sleep(0.2)
            promoted_spec = _get(url, "/stats")["online"]["promotions"]["last_spec"]
            assert set(artifacts.values()) == {promoted_spec}, artifacts
        finally:
            supervisor.shutdown()

        # Drain invariant: everything acked was folded (and persisted) or
        # deliberately withheld into the holdout reservoir.
        stats = supervisor._online.stats()
        assert (
            stats["feedback"]["folded"] + stats["feedback"]["held_out"]
            == stats["feedback"]["accepted"]
        )
        assert stats["feedback"]["accepted"] >= acked
        assert stats["feedback"]["buffered"] == 0
