"""Serving regression for the pruned engine over real HTTP.

``repro serve --engine pruned`` must be indistinguishable from the packed
engine to every client -- bit-identical labels under concurrent load --
while ``/stats`` additionally exposes the prune hit/fallback counters so
operators can see whether the shortlist is actually pruning.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.config import MEMHDConfig
from repro.core.model import MEMHDModel
from repro.runtime.server import ModelServer


def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post(url, payload, timeout=30):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


@pytest.fixture(scope="module")
def pruned_server(tiny_dataset):
    """A live pruned-engine server plus its model (for reference labels)."""
    model = MEMHDModel(
        tiny_dataset.num_features,
        tiny_dataset.num_classes,
        MEMHDConfig(dimension=64, columns=16, epochs=2, seed=9),
        rng=9,
    )
    model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
    server = ModelServer(model, engine="pruned", prune_topk=2, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, model
    finally:
        server.shutdown()
        thread.join(timeout=10)


class TestPrunedServing:
    def test_concurrent_load_bit_identical_to_packed(
        self, pruned_server, tiny_dataset
    ):
        server, model = pruned_server
        features = tiny_dataset.test_features
        reference = model.predict(features, engine="packed")

        # Mixed batch sizes hammered from many client threads: every
        # response must match the packed full scan row for row.
        slices = [
            slice(i, min(i + size, len(features)))
            for size in (1, 7, 16)
            for i in range(0, len(features), size)
        ]

        def hit(window):
            status, payload = _post(
                server.url + "/predict",
                {"features": features[window].tolist()},
            )
            assert status == 200
            return window, np.asarray(payload["labels"], dtype=np.int64)

        with ThreadPoolExecutor(max_workers=12) as pool:
            for window, labels in pool.map(hit, slices):
                np.testing.assert_array_equal(labels, reference[window])

    def test_stats_expose_prune_counters(self, pruned_server, tiny_dataset):
        server, _ = pruned_server
        _post(
            server.url + "/predict",
            {"features": tiny_dataset.test_features[:8].tolist()},
        )
        status, stats = _get(server.url + "/stats")
        assert status == 200
        pruned = stats["models"]["default"]["pruned"]
        assert pruned is not None
        for key in (
            "queries",
            "shortlist_hits",
            "widened",
            "fallbacks",
            "rows_scored",
            "rows_full_scan",
            "prune_ratio",
            "prune_topk",
        ):
            assert key in pruned
        assert pruned["queries"] >= 8
        assert pruned["prune_topk"] == 2
        accounted = pruned["shortlist_hits"] + pruned["widened"] + pruned["fallbacks"]
        assert accounted == pruned["queries"]

    def test_engine_reported_in_describe(self, pruned_server):
        server, _ = pruned_server
        status, health = _get(server.url + "/healthz")
        assert status == 200
        assert health["engine"] == "pruned"


class TestPackedServerHasNullPruneStats:
    def test_packed_engine_reports_none(self, tiny_dataset):
        model = MEMHDModel(
            tiny_dataset.num_features,
            tiny_dataset.num_classes,
            MEMHDConfig(dimension=48, columns=16, epochs=1, seed=3),
            rng=3,
        )
        model.fit(tiny_dataset.train_features, tiny_dataset.train_labels)
        server = ModelServer(model, engine="packed", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            _post(
                server.url + "/predict",
                {"features": tiny_dataset.test_features[:4].tolist()},
            )
            _, stats = _get(server.url + "/stats")
            assert stats["models"]["default"]["pruned"] is None
        finally:
            server.shutdown()
            thread.join(timeout=10)
